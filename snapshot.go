package exactsim

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/exactsim/exactsim/internal/diag"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/store"
)

// Snapshots make the diagonal sample index durable: everything a warm
// serving process has paid for — the graph in instantly-loadable binary
// CSR form, plus the epoch's accumulated diag chunks and explorations —
// lands in one versioned, checksummed container (internal/store) that a
// restarting process (or a fresh fleet member) opens in milliseconds.
// The graph section is mmap'd and served zero-copy where the platform
// allows; the diag spill is bound to (graph checksum, c, seed), so a
// snapshot restored against the wrong graph is rejected rather than
// silently wrong. Queries on a restored service are bit-identical to
// queries on the process that wrote the snapshot: the graph bytes are
// identical, every algorithm is a deterministic function of
// (graph, seed, options), and cached diag entries are interchangeable
// bit-for-bit with recomputation (see internal/diag).

// Snapshot writes the service's current graph generation — graph plus
// diagonal sample index spill — as a snapshot container on w. It is a
// pure read: the service keeps serving, and the snapshot is a
// consistent point-in-time image of one epoch. Restore it with
// OpenSnapshot (or fetch it from a live daemon via /v1/snapshot).
func (s *Service) Snapshot(w io.Writer) error {
	return s.SnapshotTo(w, nil)
}

// SnapshotTo is Snapshot with a hook invoked with the epoch being
// written, after that generation is pinned but before its first byte
// goes out — transports use it to emit the epoch as a header on a
// stream they cannot buffer, guaranteed to label the generation
// actually streamed even when an Update races the call.
func (s *Service) SnapshotTo(w io.Writer, before func(epoch uint64)) error {
	// Register with the snapshot refcount before releasing closeMu:
	// Close releases a snapshot-opened service's mmap'd graph and must
	// not pull the mapping out from under a stream in progress. A
	// refcount — not holding the read lock across the write — keeps one
	// slow snapshot consumer from wedging the lock queue for everyone
	// else; Close waits on it only at the very end, just before the
	// munmap.
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return ToError(ErrServiceClosed)
	}
	s.snapshots.Add(1)
	s.closeMu.RUnlock()
	defer s.snapshots.Done()
	st := s.state.Load()
	if before != nil {
		before(st.epoch)
	}
	return writeSnapshot(w, st.g, st.diagIdx)
}

// writeSnapshot assembles one container from a graph and an optional
// diag index.
func writeSnapshot(w io.Writer, g *Graph, ix *DiagSampleIndex) error {
	var spill []byte
	if ix != nil {
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			return fmt.Errorf("exactsim: spilling diag index: %w", err)
		}
		spill = buf.Bytes()
	}
	sections := 1
	if spill != nil {
		sections = 2
	}
	sw, err := store.NewWriter(w, sections)
	if err != nil {
		return err
	}
	if _, err := sw.Section(store.SectionGraph, graph.BinarySize(g), func(pw io.Writer) error {
		return graph.EncodeCSR(pw, g)
	}); err != nil {
		return err
	}
	if spill != nil {
		if _, err := sw.Section(store.SectionDiagIndex, int64(len(spill)), func(pw io.Writer) error {
			_, werr := pw.Write(spill)
			return werr
		}); err != nil {
			return err
		}
	}
	return sw.Close()
}

// SaveSnapshot writes a service snapshot to path atomically (temp file
// + rename): a crash mid-write can never leave a half-container where
// the next boot's -snapshot flag would find it.
func (s *Service) SaveSnapshot(path string) error {
	return s.SaveSnapshotKeep(path, 0)
}

// SaveSnapshotKeep is SaveSnapshot with generation rotation: before the
// new container lands at path, the previous one moves to path.1, the one
// before to path.2, … up to path.keep (the oldest is dropped). Rotation
// happens only after the new container's bytes are safely on disk, so a
// failed save never consumes a generation — and a boot that finds path
// corrupt (torn write, bit rot) can fall back to path.1 instead of a
// cold build (see BootSnapshot). keep ≤ 0 rotates nothing.
func (s *Service) SaveSnapshotKeep(path string, keep int) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	// CreateTemp's 0600 would survive the rename; snapshots are fleet
	// artifacts, give them normal file permissions.
	tmp.Chmod(0o644)
	var w io.Writer = tmp
	if s.opts.SnapshotWriteWrap != nil {
		w = s.opts.SnapshotWriteWrap(tmp)
	}
	if err := s.Snapshot(w); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// The replacement container exists in full; only now is it safe to
	// shift the old generations (oldest first, path.keep falls off).
	for i := keep - 1; i >= 1; i-- {
		if err := renameGen(genPath(path, i), genPath(path, i+1)); err != nil {
			return err
		}
	}
	if keep > 0 {
		if err := renameGen(path, genPath(path, 1)); err != nil {
			return err
		}
	}
	return os.Rename(tmp.Name(), path)
}

// genPath names generation i of a snapshot path: path itself for i=0,
// path.1, path.2, … for its predecessors.
func genPath(path string, i int) string {
	if i <= 0 {
		return path
	}
	return fmt.Sprintf("%s.%d", path, i)
}

// renameGen is os.Rename that treats a missing source as "nothing to
// rotate" — the normal case until keep saves have happened.
func renameGen(from, to string) error {
	if err := os.Rename(from, to); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// BootReport tells the story of one BootSnapshot call: which generation
// files were probed, which were damaged and moved aside, and which one
// (if any) booted. Daemons log it so a quarantine never happens silently.
type BootReport struct {
	// Opened is the generation that booted ("" if none did).
	Opened string
	// Tried lists every generation probed, newest first.
	Tried []string
	// Quarantined lists the damaged generations, each already renamed to
	// its original name + ".quarantine" so the evidence survives for a
	// post-mortem and the next boot doesn't trip over the same bytes.
	Quarantined []string
}

// BootSnapshot opens the newest intact snapshot generation at path:
// path itself first, then path.1, path.2, … (the SaveSnapshotKeep
// rotation chain) until one opens. A generation that fails to open —
// torn write, flipped bits, grafted sections; anything the container
// checksums or the diag-spill binding reject — is renamed to
// <name>.quarantine and the next-older generation is tried. The report
// is returned even alongside an error, so callers can log what was
// probed and what was impounded before falling back to a cold build.
func BootSnapshot(path string, opts ServiceOptions) (*Service, *BootReport, error) {
	rep := &BootReport{}
	var errs []error
	for i := 0; ; i++ {
		cand := genPath(path, i)
		if _, err := os.Stat(cand); err != nil {
			if os.IsNotExist(err) {
				if i == 0 {
					// The primary may be gone (quarantined by a previous
					// boot) while rotated generations remain — keep probing.
					continue
				}
				break // the rotation chain ends at the first gap
			}
			return nil, rep, err
		}
		rep.Tried = append(rep.Tried, cand)
		s, err := OpenSnapshot(cand, opts)
		if err == nil {
			rep.Opened = cand
			return s, rep, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", cand, err))
		q := cand + ".quarantine"
		if rerr := os.Rename(cand, q); rerr != nil {
			errs = append(errs, fmt.Errorf("quarantining %s: %w", cand, rerr))
		} else {
			rep.Quarantined = append(rep.Quarantined, q)
		}
	}
	if len(rep.Tried) == 0 {
		return nil, rep, Errorf(CodeNotFound, "exactsim: no snapshot generations at %s", path)
	}
	return nil, rep, Errorf(CodeInvalidArgument,
		"exactsim: every snapshot generation at %s failed to open: %v", path, errors.Join(errs...))
}

// OpenSnapshot starts a Service from a snapshot container: the graph is
// opened zero-copy (mmap-backed where possible) and the diagonal sample
// index spill, when present and indexing is enabled, is restored into
// the initial graph generation — so the first query after a restart
// starts as warm as the process that wrote the snapshot. The spill's
// binding is verified against the container's own graph section; a
// mismatch (a grafted or tampered container) is rejected with
// CodeInvalidArgument. The service owns the mapping and releases it on
// Close.
//
// The restored index binds to the (c, seed) the writer ran with; a
// service configured with different QuerierOptions simply serves cold
// (the index bypasses on mismatch) — wrong options can cost the warmth,
// never the exactness.
func OpenSnapshot(path string, opts ServiceOptions) (*Service, error) {
	f, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	g, aliased, err := graph.FromContainer(f)
	if err != nil {
		f.Close()
		return nil, Errorf(CodeInvalidArgument, "exactsim: %v", err)
	}

	var restored *DiagSampleIndex
	if sec, ok := f.Section(store.SectionDiagIndex); ok && opts.DiagIndexBytes >= 0 {
		ix := NewDiagSampleIndex(opts.DiagIndexBytes)
		if _, err := ix.ReadFrom(bytes.NewReader(sec.Payload)); err != nil {
			f.Close()
			return nil, Errorf(CodeInvalidArgument, "exactsim: %v", err)
		}
		if _, pending := ix.RestoredChecksum(); pending {
			// Bind the spill to the graph that arrived in the same
			// container. The graph's checksum is the verified section CRC,
			// so this is an O(1) comparison — and it catches containers
			// whose sections come from different graphs.
			if err := ix.BindRestored(g); err != nil {
				f.Close()
				return nil, Errorf(CodeInvalidArgument, "exactsim: %v", err)
			}
		}
		restored = ix
	}

	s, err := newService(g, opts, restored)
	if err != nil {
		f.Close()
		return nil, err
	}
	if aliased {
		// The graph aliases the container: the service owns both and
		// releases the mapping on Close.
		s.graphCloser = g
	} else {
		f.Close()
	}
	return s, nil
}

// InspectSnapshot describes a snapshot container without starting a
// service: section shapes, the graph's degree structure, and the diag
// spill binding. The graph section is fully validated (checksums always
// are); cmd/snapshot's inspect command prints the result.
type SnapshotInfo struct {
	// Mapped reports whether this open used the zero-copy mmap path.
	Mapped bool
	// Sections lists the container sections in file order.
	Sections []SnapshotSection
	// GraphStats summarizes the graph section.
	GraphStats GraphStats
	// GraphChecksum is the graph section's verified CRC64 — the identity
	// the diag spill binds to.
	GraphChecksum uint64
	// Diag holds the spill header when the container carries one.
	Diag *diag.SpillInfo
}

// SnapshotSection is one section of an inspected container.
type SnapshotSection struct {
	ID     uint32
	Offset int64
	Bytes  int64
	CRC    uint64
}

// InspectSnapshot opens, verifies and summarizes a snapshot container.
func InspectSnapshot(path string) (*SnapshotInfo, error) {
	f, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info := &SnapshotInfo{Mapped: f.Mapped()}
	for _, sec := range f.Sections() {
		info.Sections = append(info.Sections, SnapshotSection{
			ID: sec.ID, Offset: sec.Offset, Bytes: int64(len(sec.Payload)), CRC: sec.CRC,
		})
	}
	g, _, err := graph.FromContainer(f)
	if err != nil {
		return nil, err
	}
	info.GraphStats = Stats(g)
	info.GraphChecksum = g.Checksum()
	if sec, ok := f.Section(store.SectionDiagIndex); ok {
		di, err := diag.ReadSpillInfo(bytes.NewReader(sec.Payload))
		if err != nil {
			return nil, err
		}
		info.Diag = &di
	}
	return info, nil
}

// OpenBinary opens a binary graph file zero-copy: where the platform
// allows, the file is mmap'd and the graph's CSR arrays alias the
// mapping (no parsing, no allocation — Close the graph to release it).
// Elsewhere the same call transparently decodes into memory.
func OpenBinary(path string) (*Graph, error) { return graph.OpenBinary(path) }
