package exactsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/plan"
)

// ErrServiceClosed is returned by Query and Batch after Close (as a
// Response.Err with CodeClosed; errors.Is against this sentinel works).
var ErrServiceClosed = errors.New("exactsim: service closed")

// ServiceOptions configures a Service. The zero value is usable: it serves
// with one worker per CPU, a 1024-entry result cache, the "exactsim"
// algorithm and no default deadline.
type ServiceOptions struct {
	// Workers is the size of the query worker pool — the maximum number of
	// queries computing concurrently. 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds queries waiting for a worker. Submissions beyond
	// it are shed class-aware (background first, interactive last) with a
	// retryable unavailable carrying a retry_after_ms hint — never
	// blocked, so an overloaded service answers fast instead of growing
	// an unbounded line. 0 selects 4×Workers.
	QueueDepth int
	// CacheSize is the single-source LRU capacity, keyed by (epoch,
	// algorithm, source, ε). 0 selects 1024; negative disables caching.
	CacheSize int
	// MaxQueriers bounds the retained (epoch, algorithm, ε) queriers —
	// each can hold a full index, so the map must not grow with every
	// distinct client-supplied epsilon. Least-recently-used queriers are
	// dropped beyond the bound (in-flight queries keep theirs; the
	// structures are immutable). 0 selects 64.
	MaxQueriers int
	// DefaultAlgorithm answers requests with an empty Algorithm field.
	// Empty selects AlgorithmAuto: the adaptive planner picks the
	// cheapest registered method whose guarantees cover the request (the
	// Response.Plan block shows the choice). Name a concrete algorithm to
	// pin every defaulted request to it instead.
	DefaultAlgorithm string
	// DefaultTimeout, when positive, bounds every query that has no
	// earlier deadline of its own; exceeding it surfaces as
	// CodeDeadlineExceeded (errors.Is context.DeadlineExceeded).
	DefaultTimeout time.Duration
	// DiagIndexBytes is the memory budget of the per-epoch diagonal
	// sample index shared by every ExactSim querier of one graph
	// generation — the cache that amortizes the Diagonal phase (the
	// dominant single-source cost) across queries with distinct sources.
	// 0 selects the 128 MiB default; negative disables the index. Each
	// Update starts the new epoch with a fresh, empty index, so a chunk
	// sampled on an old graph can never answer on a new one.
	DiagIndexBytes int64
	// QuerierOptions are applied to every querier the service constructs,
	// before the per-request epsilon. Use them to pin C, seeds, worker
	// counts or sampling constants service-wide.
	QuerierOptions []QuerierOption
	// SnapshotWriteWrap, when non-nil, wraps the file writer that
	// SaveSnapshot/SaveSnapshotKeep stream the container through. It
	// exists for fault injection — exactsimd's -fault flag plugs
	// internal/fault's torn-write/corruption wrapper in here so chaos
	// runs exercise the quarantine boot path with real damaged files.
	// Write faults can only ever cost the snapshot (the container
	// checksum catches them on open), never answer correctness.
	SnapshotWriteWrap func(io.Writer) io.Writer

	// QueueTarget is the CoDel sojourn target of the priority queue:
	// once queued jobs dwell above it for a full QueueWindow, the queue
	// enters its dropping state and sheds oldest-first until dwell
	// recovers. 0 selects 5ms; negative disables age-based drops (the
	// overflow shed and deadline rejection still apply).
	QueueTarget time.Duration
	// QueueWindow is the CoDel interval: how long dwell must stay above
	// QueueTarget before drops begin, and the sliding horizon of the
	// brownout overload signal. 0 selects 100ms.
	QueueWindow time.Duration

	// DisableBrownout turns degraded answering off entirely: overloaded
	// requests are shed rather than answered by a cheaper plan, even
	// when they set AllowDegraded.
	DisableBrownout bool
	// BrownoutMaxEpsilon caps brownout epsilon loosening: a degraded
	// request's epsilon doubles (one quantization octave — the chunk
	// allowances of PR 4 are power-of-two sized, so octave steps stay
	// cache-aligned) only while the doubled value stays at or below this
	// cap. 0 selects 0.1; negative disables epsilon loosening (the
	// DegradeLadder algorithm downgrade remains).
	BrownoutMaxEpsilon float64
	// DegradeLadder maps each algorithm to the cheaper one a brownout
	// answer may substitute when epsilon can loosen no further. nil
	// selects DefaultDegradeLadder; an empty non-nil map disables
	// algorithm downgrades. Every key and value must name a registered
	// algorithm (validated by NewService).
	DegradeLadder map[string]string
}

func (o *ServiceOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.MaxQueriers <= 0 {
		o.MaxQueriers = 64
	}
	if o.DefaultAlgorithm == "" {
		o.DefaultAlgorithm = AlgorithmAuto
	}
	if o.QueueTarget == 0 {
		o.QueueTarget = defaultQueueTarget
	}
	if o.QueueWindow <= 0 {
		o.QueueWindow = defaultQueueWindow
	}
	if o.BrownoutMaxEpsilon == 0 {
		o.BrownoutMaxEpsilon = defaultBrownoutMaxEpsilon
	}
	if o.DegradeLadder == nil {
		o.DegradeLadder = DefaultDegradeLadder
	}
}

// Request names one single-source (or top-k) SimRank query. It is the
// wire request of the query protocol: plain JSON-taggable fields only, so
// the same struct serves in-process calls, the HTTP API and any future
// transport.
type Request struct {
	// Algorithm is a registry name (see Algorithms); empty selects the
	// service default.
	Algorithm string `json:"algorithm,omitempty"`
	// Source is the query node.
	Source NodeID `json:"source"`
	// K, when positive, additionally extracts the top-k entries.
	K int `json:"k,omitempty"`
	// Epsilon overrides the error target for this request; 0 keeps the
	// service-wide default. Distinct epsilons get distinct queriers and
	// distinct cache lines.
	Epsilon float64 `json:"epsilon,omitempty"`
	// NoCache bypasses the result cache for this request (both lookup and
	// fill) — for callers that need a fresh computation, e.g. right after
	// graph updates elsewhere.
	NoCache bool `json:"no_cache,omitempty"`
	// Priority is the request's overload class (interactive > batch >
	// background); empty means interactive. Under pressure lower classes
	// queue behind higher ones and are shed first; Warm traffic defaults
	// to background.
	Priority Priority `json:"priority,omitempty"`
	// AllowDegraded opts this request into brownout mode: when the
	// service detects sustained overload it may answer with a cheaper
	// plan (epsilon loosened one octave, or the algorithm stepped down
	// the configured ladder), marking Response.Degraded. Requests that
	// do not opt in are never degraded — their answers stay bit-exact
	// under any load.
	AllowDegraded bool `json:"allow_degraded,omitempty"`
	// AllowPartial opts this request into anytime serving: the worker
	// evaluates an accuracy-tier ladder (coarse→target epsilon) with
	// deadline checkpoints, and a deadline that fires mid-refinement
	// returns the best answer so far (Response.Partial, with the achieved
	// epsilon reported) instead of deadline_exceeded. It also lets an
	// "auto" plan weigh the remaining deadline budget. Requests that do
	// not opt in keep the strict contract: the target accuracy or a
	// coded error, nothing between.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// Response carries one request's outcome. Err is per-request and
// structured (a batch can mix successes and failures); the whole struct
// round-trips through JSON, which is what lets the HTTP transport reuse
// it unchanged.
type Response struct {
	// Request echoes the (normalized) request this answers.
	Request Request `json:"request"`
	// Result is the full single-source result; shared with the cache, so
	// treat Result.Scores as read-only.
	Result *QueryResult `json:"result,omitempty"`
	// TopK is populated when Request.K > 0.
	TopK []Entry `json:"top_k,omitempty"`
	// CacheHit reports whether Result came from the LRU. Serialized even
	// when false — the §6 wire examples show it explicitly.
	CacheHit bool `json:"cache_hit"`
	// GraphEpoch is the graph generation this response was computed on.
	// Epochs start at 1 and increment on every Service.Update; a response
	// is internally consistent on its epoch even when an update lands
	// mid-query.
	GraphEpoch uint64 `json:"graph_epoch"`
	// Degraded marks a brownout answer: the service was overloaded, the
	// request set AllowDegraded, and this response was computed by a
	// cheaper plan (loosened epsilon or a downgraded algorithm — the
	// echoed Request shows which). Never set on requests that did not
	// opt in.
	Degraded bool `json:"degraded,omitempty"`
	// Plan is the planner's audit block, present exactly when the request
	// was routed through AlgorithmAuto: the concrete method chosen, the
	// effective epsilon it ran at, and the enumerated decision reason.
	// The echoed Request carries the planned algorithm, so the answer is
	// cached — and deduplicated — under the planned key.
	Plan *PlanInfo `json:"plan,omitempty"`
	// Partial marks a best-so-far answer: the request set AllowPartial,
	// its deadline fired mid-refinement, and Result holds the coarsest
	// completed tier instead of the target. AchievedEpsilon reports the
	// error bound actually met. Intermediate records of a streaming query
	// are Partial too — only the terminal record is the full answer.
	Partial bool `json:"partial,omitempty"`
	// AchievedEpsilon is the error target Result actually satisfies; set
	// only on Partial responses (a full answer achieves the requested
	// target by definition).
	AchievedEpsilon float64 `json:"achieved_epsilon,omitempty"`
	// Err is the per-request error, nil on success. Cancelled queries
	// report CodeCanceled/CodeDeadlineExceeded (matching the context
	// sentinels under errors.Is).
	Err *Error `json:"error,omitempty"`
}

// WarmRequest asks a Service to pre-compute a set of single-source
// queries so later traffic starts warm: each pre-computed source fills the
// result cache, and — more importantly — populates the epoch's diagonal
// sample index with the chunk cells its touched nodes need, cells that
// queries from *other* sources share. It is part of the wire protocol
// (POST /v1/warm in httpapi).
type WarmRequest struct {
	// Algorithm and Epsilon select the querier to warm; empty/zero keep
	// the service defaults.
	Algorithm string  `json:"algorithm,omitempty"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	// Sources are the query nodes to pre-compute. When empty, the
	// TopDegree highest in-degree nodes are warmed instead: π mass
	// concentrates on high in-degree hubs, so hub queries accumulate the
	// fattest sample allowances — exactly the chunk cells that dominate
	// every other query's Diagonal phase.
	Sources []NodeID `json:"sources,omitempty"`
	// TopDegree is the hub count used when Sources is empty; 0 selects 32.
	TopDegree int `json:"top_degree,omitempty"`
}

// WarmResponse reports one Warm call's outcome.
type WarmResponse struct {
	// Warmed / Failed count the pre-computed sources by outcome.
	Warmed int `json:"warmed"`
	Failed int `json:"failed"`
	// GraphEpoch is the generation current when the pass finished — the
	// one left (at least partially) warm. An Update mid-warm moves it.
	GraphEpoch uint64 `json:"graph_epoch"`
	// Err is set only when the call failed wholesale (closed service,
	// invalid request); per-source failures just count toward Failed.
	Err *Error `json:"error,omitempty"`
}

// DefaultWarmTopDegree is the hub count warmed by a WarmRequest that names
// neither sources nor a TopDegree. Exported so transports can bound the
// effective fan-out of a default request (httpapi holds it against
// MaxBatch).
const DefaultWarmTopDegree = 32

// ServiceStats is a point-in-time snapshot: monotonic counters plus the
// gauges a load balancer wants when deciding where to send traffic.
type ServiceStats struct {
	// Queries is the number of requests answered (including failures).
	Queries int64 `json:"queries"`
	// CacheHits counts requests served from the LRU.
	CacheHits int64 `json:"cache_hits"`
	// Errors counts requests that returned a non-nil Err.
	Errors int64 `json:"errors"`
	// CachedResults is the current LRU entry count.
	CachedResults int `json:"cached_results"`
	// QueueDepth is the number of queries waiting for a worker right now.
	QueueDepth int `json:"queue_depth"`
	// InFlight is the number of queries computing on workers right now.
	InFlight int `json:"in_flight"`
	// Queriers is the number of retained (epoch, algorithm, ε) queriers.
	Queriers int `json:"queriers"`
	// GraphEpoch is the current graph generation (starts at 1).
	GraphEpoch uint64 `json:"graph_epoch"`
	// Diagonal sample index gauges for the current epoch (all zero when
	// the index is disabled). Hits/misses count chunk and exploration
	// lookups since the epoch began; resident/budget bytes describe the
	// index's footprint against its eviction threshold. A load balancer
	// reads DiagHitRate to tell a warm instance from a cold one.
	DiagIndexEnabled  bool    `json:"diag_index_enabled"`
	DiagHits          int64   `json:"diag_hits"`
	DiagMisses        int64   `json:"diag_misses"`
	DiagHitRate       float64 `json:"diag_hit_rate"`
	DiagEvictions     int64   `json:"diag_evictions"`
	DiagChunks        int     `json:"diag_chunks"`
	DiagExplores      int     `json:"diag_explores"`
	DiagResidentBytes int64   `json:"diag_resident_bytes"`
	DiagBudgetBytes   int64   `json:"diag_budget_bytes"`
	// Overload-control gauges. ShedQueries counts requests rejected (or
	// evicted) by the full priority queue; CoDelDrops counts age-based
	// head drops (sojourn over target for a window); DeadlineRejected
	// counts queries answered deadline_exceeded before any work because
	// their budget was already spent on arrival or in the queue;
	// DegradedQueries counts successful brownout answers (AllowDegraded
	// requests served by a cheaper plan). BrownoutActive reports whether
	// the overload signal is currently firing; QueueSojournMicros is the
	// smoothed queue dwell the retry_after_ms hints are sized from.
	ShedQueries        int64 `json:"shed_queries"`
	CoDelDrops         int64 `json:"codel_drops"`
	DeadlineRejected   int64 `json:"deadline_rejected"`
	DegradedQueries    int64 `json:"degraded_queries"`
	BrownoutActive     bool  `json:"brownout_active"`
	QueueSojournMicros int64 `json:"queue_sojourn_us"`
	// Planner gauges. AutoPlanned counts requests routed through
	// AlgorithmAuto; PartialResults counts best-so-far answers served at
	// a deadline (AllowPartial requests whose ladder was cut short).
	AutoPlanned    int64 `json:"auto_planned"`
	PartialResults int64 `json:"partial_results"`
	// PanicsRecovered counts panics contained by recover() instead of
	// killing the process — worker panics, querier-build panics, and (in
	// the HTTP servers' view of this struct) handler panics. Nonzero
	// means an algorithm or handler has a bug; the process absorbed it.
	PanicsRecovered int64 `json:"panics_recovered"`
	// LastPanic is the headline of the most recent recovered panic ("" =
	// never). The full stack goes to the process log, not the wire.
	LastPanic string `json:"last_panic"`
}

// graphState is one immutable graph generation. Queries capture the
// current state once at entry and use it throughout, so an Update landing
// mid-query never mixes epochs inside one response. The diagonal sample
// index lives here — not on the Service — so epoch isolation is
// structural: a query can only ever reach the index of the generation it
// captured, and a dropped generation takes its chunks with it.
type graphState struct {
	g       *Graph
	epoch   uint64
	diagIdx *DiagSampleIndex // nil when DiagIndexBytes < 0
	// planner is this generation's adaptive query planner: the cost
	// model is calibrated against this epoch's graph stats, so — like
	// the diag index — a plan can only ever be made from the generation
	// the query captured.
	planner *plan.Planner
}

// Service is a concurrent SimRank query front-end over a live graph: a
// bounded worker pool executing Querier calls, per-query deadlines with
// cancellation honored inside the algorithms' computation loops, an LRU
// cache of single-source results keyed by (epoch, algorithm, source, ε),
// lazy per-algorithm querier construction, and epoch-based graph
// generations — Update installs a new snapshot under the next epoch
// without downtime (the paper's index-free property is what makes this
// cheap: no index maintenance, just fresh queriers on the new snapshot).
//
// Queriers are cached per (epoch, algorithm, ε) and shared across workers —
// the underlying engines are immutable after construction, so concurrent
// queries are safe (verified by the race-detector tests).
//
// Synchronization discipline (one per field group, audited in PR 8):
// monotonic stats counters are atomics read lock-free by Stats; each
// mutable map or flag lives under exactly one named mutex (updateMu,
// closeMu, querierMu, flightMu) and is never also touched atomically;
// state is an atomic pointer swapped only under updateMu. Keep new
// fields in one of these groups rather than inventing a mixed idiom.
type Service struct {
	opts ServiceOptions

	// state is the current graph generation; swapped atomically by Update.
	state atomic.Pointer[graphState]
	// updateMu serializes Update calls so epochs are strictly increasing.
	updateMu sync.Mutex
	// unsubscribe detaches a ServeDynamic subscription on Close.
	unsubscribe func()

	// queue is the class-aware priority queue feeding the worker pool
	// (see overload.go): bounded like the old jobs channel, but drained
	// interactive-first, shed class-aware on overflow, and CoDel-dropped
	// when standing dwell exceeds QueueTarget.
	queue   *serviceQueue
	workers sync.WaitGroup

	// degradeLadder is the validated, private copy of
	// ServiceOptions.DegradeLadder brownout answers step down.
	degradeLadder map[string]string

	// buildCtx outlives individual requests: index builds run under it
	// (cancelled only by Close), so one short-deadline request cannot
	// abort-and-retry-forever a long build that later requests need.
	buildCtx    context.Context
	cancelBuild context.CancelFunc

	// closeMu guards the closed flag (the queue has its own internal
	// closed state; pushes after close are rejected, never a panic).
	closeMu sync.RWMutex
	closed  bool

	// queriers are lazily built per (epoch, algorithm, ε), one build in
	// flight per key (single-flight); the map is LRU-bounded by
	// MaxQueriers, and Update drops every completed stale-epoch entry.
	querierMu  sync.Mutex
	queriers   map[querierKey]*querierSlot
	querierSeq int64

	// inflight dedupes identical cacheable requests: concurrent queries
	// for the same (epoch, algorithm, source, ε) elect one leader to
	// compute while the rest wait on its flight — without this, N clients
	// asking for the same cold key would saturate the pool with N copies
	// of the same expensive computation (cache stampede).
	flightMu sync.Mutex
	inflight map[cacheKey]*flight

	cache *resultCache

	// graphCloser, when set (OpenSnapshot), releases the mmap'd mapping
	// backing the initial graph after the workers drain on Close.
	// snapshots counts in-progress Snapshot streams; Close waits for it
	// before releasing the mapping they may be reading (entries are
	// added under closeMu.RLock with the closed flag checked, so Close
	// cannot miss one).
	graphCloser io.Closer
	snapshots   sync.WaitGroup

	queries   atomic.Int64
	cacheHits atomic.Int64
	errors    atomic.Int64
	inFlight  atomic.Int64

	// deadlineRejected counts expired-on-arrival answers (budget gone
	// before any work); degradedQueries counts successful brownout
	// answers. Both are monotonic wire gauges.
	deadlineRejected atomic.Int64
	degradedQueries  atomic.Int64

	// autoPlanned counts requests routed through AlgorithmAuto;
	// partialResults counts best-so-far answers served at a deadline.
	autoPlanned    atomic.Int64
	partialResults atomic.Int64

	// baseEpsilon is the effective service-wide error target resolved
	// from QuerierOptions at construction — the value the planner's
	// decisions (and the 0-epsilon request sentinel) are anchored to.
	baseEpsilon float64

	// panics counts worker/build panics contained by recover(); lastPanic
	// keeps the most recent one's headline + stack for diagnosis. A panic
	// inside an algorithm must cost one CodeInternal response, never the
	// process.
	panics    atomic.Int64
	lastPanic atomic.Pointer[string]
}

// querierKey identifies one constructed querier. Unlike the result
// cacheKey it has no source field — a querier answers every source — and
// the distinct type keeps a future edit from accidentally fragmenting the
// querier map per source. The epoch pins a querier to the graph
// generation it was built on.
type querierKey struct {
	epoch     uint64
	algorithm string
	epsilon   float64
}

// querierSlot is the single-flight build state for one key. The creator
// spawns the build; everyone else waits on done under their own context,
// so a slow index build never blocks a worker past its request deadline.
type querierSlot struct {
	done chan struct{}
	q    Querier
	err  error
	seq  int64 // recency for LRU eviction, guarded by Service.querierMu
}

// flight is one in-progress cacheable computation; waiters block on done
// under their own contexts and read resp afterwards.
type flight struct {
	done chan struct{}
	resp Response
}

type serviceJob struct {
	ctx  context.Context
	st   *graphState
	req  Request
	resp chan Response
	// emit, when non-nil, receives each intermediate refinement of an
	// anytime (tier-ladder) evaluation, on the worker goroutine, before
	// the final answer lands on resp. The submitter must keep waiting on
	// resp unconditionally — it owns whatever emit writes to.
	emit func(Response)
	// pri is the validated queue class (Priority.rank); enq timestamps
	// admission, feeding sojourn accounting and CoDel; deadline records
	// whether ctx bounds the wait — only deadline-bearing jobs are
	// eligible for CoDel age drops.
	pri      int
	enq      time.Time
	deadline bool
}

// NewService starts a query service over g (graph epoch 1).
func NewService(g *Graph, opts ServiceOptions) (*Service, error) {
	return newService(g, opts, nil)
}

// newService is NewService with an optional pre-warmed diagonal sample
// index for epoch 1 — the snapshot-restore path (OpenSnapshot) hands
// the spilled index straight into the first graph generation, so the
// warmth survives the process boundary.
func newService(g *Graph, opts ServiceOptions, restoredIdx *DiagSampleIndex) (*Service, error) {
	if g == nil {
		return nil, Errorf(CodeInvalidArgument, "exactsim: nil graph")
	}
	opts.normalize()
	if opts.DefaultAlgorithm != AlgorithmAuto && !KnownAlgorithm(opts.DefaultAlgorithm) {
		return nil, Errorf(CodeNotFound, "exactsim: unknown default algorithm %q (have auto, %v)",
			opts.DefaultAlgorithm, Algorithms())
	}
	// Resolve the effective base config once: bad querier options fail
	// the constructor instead of every first query, and the planner
	// learns the base epsilon its decisions anchor to.
	baseCfg, err := algo.Resolve(opts.QuerierOptions...)
	if err != nil {
		return nil, Errorf(CodeInvalidArgument, "exactsim: %v", err)
	}
	// The ladder is part of answer semantics (a degraded response follows
	// it), so it is validated like the default algorithm and copied so a
	// caller mutating its map cannot change live routing.
	ladder := make(map[string]string, len(opts.DegradeLadder))
	for from, to := range opts.DegradeLadder {
		if !KnownAlgorithm(from) || !KnownAlgorithm(to) {
			return nil, Errorf(CodeNotFound,
				"exactsim: degrade ladder step %q -> %q names an unknown algorithm (have %v)",
				from, to, Algorithms())
		}
		if from == to {
			return nil, Errorf(CodeInvalidArgument,
				"exactsim: degrade ladder step %q -> %q is a no-op", from, to)
		}
		ladder[from] = to
	}
	buildCtx, cancelBuild := context.WithCancel(context.Background())
	s := &Service{
		opts:          opts,
		buildCtx:      buildCtx,
		cancelBuild:   cancelBuild,
		degradeLadder: ladder,
		queriers:      make(map[querierKey]*querierSlot),
		inflight:      make(map[cacheKey]*flight),
		cache:         newResultCache(opts.CacheSize),
		baseEpsilon:   baseCfg.Epsilon,
	}
	s.queue = newServiceQueue(opts.QueueDepth, opts.QueueTarget, opts.QueueWindow, s.dropJob)
	st := s.newState(g, 1)
	if restoredIdx != nil && s.opts.DiagIndexBytes >= 0 {
		st.diagIdx = restoredIdx
	}
	s.state.Store(st)
	for w := 0; w < opts.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// newState assembles one graph generation, with its own empty diagonal
// sample index when indexing is enabled.
func (s *Service) newState(g *Graph, epoch uint64) *graphState {
	st := &graphState{g: g, epoch: epoch, planner: plan.New(g, s.baseEpsilon)}
	if s.opts.DiagIndexBytes >= 0 {
		st.diagIdx = NewDiagSampleIndex(s.opts.DiagIndexBytes)
	}
	return st
}

// ServeDynamic starts a query service over d's current snapshot and
// subscribes to it: every d.Publish() after a mutation batch installs the
// fresh snapshot via Update, so the service keeps answering — exactly —
// on the live graph with zero index maintenance. The subscription is
// detached by Close. The usual DynamicGraph rule applies: mutate and
// Publish from one goroutine.
func ServeDynamic(d *DynamicGraph, opts ServiceOptions) (*Service, error) {
	if d == nil {
		return nil, Errorf(CodeInvalidArgument, "exactsim: nil dynamic graph")
	}
	s, err := NewService(d.Snapshot(), opts)
	if err != nil {
		return nil, err
	}
	s.unsubscribe = d.Subscribe(func(g *Graph) { s.Update(g) })
	return s, nil
}

// Update installs g as the next graph generation and returns its epoch.
// In-flight queries finish consistently on the epoch they started with;
// new queries see g immediately. Stale-epoch cache entries are evicted
// and stale completed queriers dropped (in-flight builds keep running for
// the queries already waiting on them). Update on a closed service
// returns CodeClosed.
func (s *Service) Update(g *Graph) (uint64, error) {
	if g == nil {
		return 0, Errorf(CodeInvalidArgument, "exactsim: nil graph")
	}
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return 0, ToError(ErrServiceClosed)
	}
	s.updateMu.Lock()
	st := s.newState(g, s.state.Load().epoch+1)
	s.state.Store(st)
	s.updateMu.Unlock()
	s.closeMu.RUnlock()

	// Epochs never repeat, so a stale key can never be looked up again:
	// dropping the entries only reclaims memory. Slots mid-build are
	// removed from the map too — their waiters hold the slot pointer and
	// finish on their own epoch; the build's failure-path delete becomes
	// a no-op.
	s.querierMu.Lock()
	for k := range s.queriers {
		if k.epoch < st.epoch {
			delete(s.queriers, k)
		}
	}
	s.querierMu.Unlock()
	s.cache.evictIf(func(k cacheKey) bool { return k.epoch < st.epoch })
	return st.epoch, nil
}

// Query answers one request, blocking until a worker finishes it or ctx
// ends. The per-request deadline (ctx, tightened by DefaultTimeout) is
// live inside the algorithm's iteration loops, so a timeout interrupts
// even a single long-running ExactSim query mid-computation.
func (s *Service) Query(ctx context.Context, req Request) Response {
	resp := s.query(ctx, req, nil)
	s.count(resp)
	return resp
}

// QueryStream answers one request as a refinement sequence: emit receives
// each intermediate accuracy tier (Partial responses, coarse→target,
// called sequentially on a worker goroutine before QueryStream returns),
// and the returned Response is the terminal record — bit-identical to
// what Query would have answered for the same request. Cache hits and
// non-error-driven algorithms skip straight to the terminal record.
func (s *Service) QueryStream(ctx context.Context, req Request, emit func(Response)) Response {
	if emit == nil {
		emit = func(Response) {}
	}
	resp := s.query(ctx, req, emit)
	s.count(resp)
	return resp
}

func (s *Service) count(resp Response) {
	s.queries.Add(1)
	if resp.CacheHit {
		s.cacheHits.Add(1)
	}
	if resp.Err != nil {
		s.errors.Add(1)
	}
}

func (s *Service) query(ctx context.Context, req Request, emit func(Response)) Response {
	// Reject before the cache lookup: a closed service answers nothing,
	// not even cached results.
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	st := s.state.Load()
	if closed {
		return s.fail(st, req, ToError(ErrServiceClosed))
	}
	if err := s.normalizeRequest(&req, st); err != nil {
		return s.fail(st, req, err)
	}

	// AlgorithmAuto routes through the planner: the request is rewritten
	// to the concrete method + epsilon the plan selected, so every later
	// stage (brownout, cache key, single-flight, dispatch) operates on
	// the planned key and two alike-planned requests share one answer.
	var planned *PlanInfo
	if req.Algorithm == AlgorithmAuto {
		req, planned = s.resolvePlan(ctx, st, req)
		s.autoPlanned.Add(1)
	}

	var degraded bool
	if req.NoCache {
		req, degraded = s.maybeDegrade(req)
		return stampPlan(s.markDegraded(s.dispatch(ctx, st, req, emit), degraded), planned)
	}

	// Cacheable path: cache lookup, then request-level single-flight —
	// concurrent queries for the same cold key elect one leader to
	// compute; the rest wait on its flight (or their own context) instead
	// of duplicating the work across the pool. The key carries st.epoch,
	// so requests racing an Update dedupe only within their generation.
	key := cacheKey{epoch: st.epoch, algorithm: req.Algorithm,
		source: req.Source, epsilon: req.Epsilon}
	// An exact answer already cached preempts brownout: a hit is cheaper
	// than any degraded plan, so an opted-in request only degrades on a
	// miss. Degradation rewrites the plan fields, so key, cache line and
	// single-flight all operate on the plan actually computed.
	if res, ok := s.cache.get(key); ok {
		return stampPlan(s.respond(st, req, res, true), planned)
	}
	if req, degraded = s.maybeDegrade(req); degraded {
		key = cacheKey{epoch: st.epoch, algorithm: req.Algorithm,
			source: req.Source, epsilon: req.Epsilon}
	}
	if emit != nil {
		// Streaming requests want the refinement sequence, which another
		// leader's single answer cannot provide — they bypass the
		// single-flight (the cache pre-check above still short-circuits
		// warm keys straight to the terminal record).
		return stampPlan(s.markDegraded(s.dispatch(ctx, st, req, emit), degraded), planned)
	}
	for {
		if res, ok := s.cache.get(key); ok {
			return stampPlan(s.markDegraded(s.respond(st, req, res, true), degraded), planned)
		}
		s.flightMu.Lock()
		if f, ok := s.inflight[key]; ok {
			s.flightMu.Unlock()
			select {
			case <-f.done:
				if f.resp.Err == nil && f.resp.Result != nil && !f.resp.Partial {
					// Served by the leader's computation: a hit as far as
					// this request is concerned. A Partial leader answer is
					// NOT shareable — its deadline is not ours.
					return stampPlan(s.markDegraded(s.respond(st, req, f.resp.Result, true), degraded), planned)
				}
				// The leader failed (its deadline, a build error): its
				// error is not ours — loop and retry, perhaps as leader.
				continue
			case <-ctx.Done():
				return stampPlan(s.markDegraded(s.fail(st, req, ToError(ctx.Err())), degraded), planned)
			}
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		s.flightMu.Unlock()

		resp := s.dispatch(ctx, st, req, nil)

		f.resp = resp
		s.flightMu.Lock()
		delete(s.inflight, key)
		s.flightMu.Unlock()
		close(f.done)
		return stampPlan(s.markDegraded(resp, degraded), planned)
	}
}

// normalizeRequest is the single request-validation point of the Service
// boundary (Query, QueryStream, Batch and Warm all funnel through it):
// defaults applied, then every field screened with a coded
// invalid_argument/not_found before any dispatch — no per-algorithm
// ad-hoc handling downstream.
func (s *Service) normalizeRequest(req *Request, st *graphState) *Error {
	if req.Algorithm == "" {
		req.Algorithm = s.opts.DefaultAlgorithm
	}
	if req.Algorithm != AlgorithmAuto && !KnownAlgorithm(req.Algorithm) {
		return Errorf(CodeNotFound,
			"exactsim: unknown algorithm %q (have auto, %v)", req.Algorithm, Algorithms())
	}
	if req.K < 0 {
		return Errorf(CodeInvalidArgument, "exactsim: negative k %d", req.K)
	}
	if req.Source < 0 || int(req.Source) >= st.g.N() {
		return Errorf(CodeInvalidArgument,
			"exactsim: source %d out of range [0,%d)", req.Source, st.g.N())
	}
	// Epsilon is part of the querier and cache keys, so screen it here:
	// a NaN key would never match itself and leak a querier slot per
	// request (0 is the "service default" sentinel).
	if math.IsNaN(req.Epsilon) || math.IsInf(req.Epsilon, 0) ||
		req.Epsilon < 0 || req.Epsilon >= 1 {
		return Errorf(CodeInvalidArgument,
			"exactsim: epsilon %g outside (0,1) (0 = service default)", req.Epsilon)
	}
	if _, ok := req.Priority.rank(); !ok {
		return Errorf(CodeInvalidArgument,
			"exactsim: unknown priority %q (have %q, %q, %q)",
			req.Priority, PriorityInteractive, PriorityBatch, PriorityBackground)
	}
	return nil
}

// stampPlan attaches the planner's audit block to the final response of
// an "auto"-routed request. Intermediate stream records carry no Plan —
// the terminal record is the auditable answer.
func stampPlan(resp Response, planned *PlanInfo) Response {
	resp.Plan = planned
	return resp
}

// maybeDegrade substitutes a cheaper plan while the overload signal
// fires, for requests that opted in (AllowDegraded) and services that
// allow it. One step per request: epsilon loosens one quantization
// octave while the doubled value stays under BrownoutMaxEpsilon, else
// the algorithm steps down the degrade ladder. Requests without the
// opt-in pass through untouched — their answers stay bit-exact under
// any load (the brownout determinism carve-out, DESIGN §12).
func (s *Service) maybeDegrade(req Request) (Request, bool) {
	if !req.AllowDegraded || s.opts.DisableBrownout || !s.queue.overloaded() {
		return req, false
	}
	if req.Epsilon > 0 && s.opts.BrownoutMaxEpsilon > 0 && 2*req.Epsilon <= s.opts.BrownoutMaxEpsilon {
		req.Epsilon *= 2
		return req, true
	}
	if next, ok := s.degradeLadder[req.Algorithm]; ok {
		req.Algorithm = next
		return req, true
	}
	return req, false
}

// markDegraded stamps a brownout answer and counts it (successes only —
// a degraded plan that still failed degraded nobody's accuracy).
func (s *Service) markDegraded(resp Response, degraded bool) Response {
	if !degraded {
		return resp
	}
	resp.Degraded = true
	if resp.Err == nil {
		s.degradedQueries.Add(1)
	}
	return resp
}

// dispatch queues one request on the worker pool and waits for its
// response under ctx (tightened by DefaultTimeout). A request whose
// budget is already spent — or that the overflowing queue sheds — is
// answered immediately instead of occupying a slot; it never blocks
// the submitter.
// deadlineSpent reports whether ctx's deadline has already passed on the
// wall clock. Deliberately stricter than ctx.Err(): the runtime timer
// that cancels a context can fire milliseconds late on a loaded
// scheduler, and an admission check that waited for it would execute
// work whose budget is provably gone.
func deadlineSpent(ctx context.Context) bool {
	dl, ok := ctx.Deadline()
	return ok && !time.Now().Before(dl)
}

func (s *Service) dispatch(ctx context.Context, st *graphState, req Request, emit func(Response)) Response {
	if s.opts.DefaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.DefaultTimeout)
		defer cancel()
	}

	// Expired-on-arrival rejection: a query that cannot meet its deadline
	// must not cost a queue slot, let alone a worker.
	if err := ctx.Err(); err != nil || deadlineSpent(ctx) {
		if err == nil {
			err = context.DeadlineExceeded
		}
		if errors.Is(err, context.DeadlineExceeded) {
			s.deadlineRejected.Add(1)
		}
		return s.fail(st, req, ToError(err))
	}

	pri, _ := req.Priority.rank() // validated in query()
	_, hasDeadline := ctx.Deadline()
	job := &serviceJob{ctx: ctx, st: st, req: req, resp: make(chan Response, 1), emit: emit,
		pri: pri, enq: time.Now(), deadline: hasDeadline}
	switch s.queue.push(job) {
	case pushClosed:
		return s.fail(st, req, ToError(ErrServiceClosed))
	case pushShed:
		return s.fail(st, req, s.shedError(req.Priority))
	}

	if emit != nil || req.AllowPartial {
		// Streaming and anytime requests wait for the worker
		// unconditionally: the worker owns emit (returning early would
		// race its writes) and a deadline firing mid-ladder must come
		// back as the best-so-far answer, not as the submitter's
		// ctx error. This cannot hang — every pushed job is answered
		// exactly once (a worker executes it, dropJob ejects it, or the
		// closing queue drains it), and the algorithms observe ctx
		// internally, so a dead context still ends the wait promptly.
		return <-job.resp
	}
	select {
	case resp := <-job.resp:
		return resp
	case <-ctx.Done():
		// The worker that picks the job up will see the dead context and
		// drop it without computing.
		return s.fail(st, req, ToError(ctx.Err()))
	}
}

// dropJob answers a job the queue ejected (overflow shed or CoDel age
// drop) with a retryable unavailable carrying the retry_after_ms hint.
// It runs on whichever goroutine triggered the drop; the response
// channel is buffered, so the send never blocks even when the
// submitter already gave up on its context.
func (s *Service) dropJob(job *serviceJob, reason queueDropReason) {
	var err *Error
	switch reason {
	case dropCoDel:
		err = Errorf(CodeUnavailable,
			"exactsim: %s query dropped: queue dwell over target (CoDel)",
			job.req.Priority.display())
	default:
		err = Errorf(CodeUnavailable,
			"exactsim: %s query shed: queue full", job.req.Priority.display())
	}
	err.RetryAfterMillis = s.queue.retryAfterMillis()
	job.resp <- s.fail(job.st, job.req, err)
}

// shedError is the answer for a request the full queue rejected at the
// door (as opposed to a queued victim it evicted).
func (s *Service) shedError(pri Priority) *Error {
	err := Errorf(CodeUnavailable,
		"exactsim: %s query shed: queue full", pri.display())
	err.RetryAfterMillis = s.queue.retryAfterMillis()
	return err
}

// Batch answers many requests concurrently through the worker pool and
// returns responses in request order. Each response carries its own Err;
// Batch itself only fails fast on a closed service or a dead context.
// Submission is bounded by Workers+QueueDepth in-flight goroutines —
// exactly what the pool can hold — and stops as soon as ctx ends: the
// remaining requests are answered in place with the context's error code
// instead of each paying a goroutine to discover it.
func (s *Service) Batch(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	sem := make(chan struct{}, s.opts.Workers+s.opts.QueueDepth)
	var wg sync.WaitGroup
	for i := 0; i < len(reqs); i++ {
		// The explicit Err check makes a pre-cancelled context
		// deterministic (select would pick randomly between the two ready
		// cases and sometimes spawn one more goroutine).
		if ctx.Err() != nil {
			s.failRemaining(ctx, reqs, out, i)
			break
		}
		select {
		case sem <- struct{}{}:
			// select picks randomly among ready cases, so a slot can win
			// the race against an already-dead context; re-check so an
			// expired batch never submits more work to the pool.
			if ctx.Err() != nil {
				<-sem
				s.failRemaining(ctx, reqs, out, i)
				wg.Wait()
				return out
			}
		case <-ctx.Done():
			s.failRemaining(ctx, reqs, out, i)
			wg.Wait()
			return out
		}
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = s.Query(ctx, req)
		}(i, reqs[i])
	}
	wg.Wait()
	return out
}

// Warm pre-computes the requested sources through the regular query path
// (worker pool, cache fills, diagonal index fills) and reports how many
// completed. Warming is cumulative and idempotent — already-cached sources
// are hits, not recomputations — and an Update mid-warm simply leaves the
// new epoch partially warmed (the warmed chunks of the old epoch are
// unreachable by construction). Callers bound the work with ctx.
func (s *Service) Warm(ctx context.Context, wr WarmRequest) WarmResponse {
	st := s.state.Load()
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if closed {
		return WarmResponse{GraphEpoch: st.epoch, Err: ToError(ErrServiceClosed)}
	}
	if wr.TopDegree < 0 {
		return WarmResponse{GraphEpoch: st.epoch, Err: Errorf(CodeInvalidArgument,
			"exactsim: negative top_degree %d", wr.TopDegree)}
	}
	sources := wr.Sources
	if len(sources) == 0 {
		k := wr.TopDegree
		if k == 0 {
			k = DefaultWarmTopDegree
		}
		sources = topInDegreeSources(st.g, k)
	}
	reqs := make([]Request, len(sources))
	for i, src := range sources {
		// Warming is optional work by definition: it rides the background
		// class so a warm pass can never crowd out user-facing queries.
		reqs[i] = Request{Algorithm: wr.Algorithm, Source: src, Epsilon: wr.Epsilon,
			Priority: PriorityBackground}
	}
	var out WarmResponse
	for _, resp := range s.Batch(ctx, reqs) {
		if resp.Err != nil {
			out.Failed++
		} else {
			out.Warmed++
		}
	}
	// Report the epoch current *after* the pass — queries run on whatever
	// generation is live when they execute, so an Update mid-warm means
	// the final epoch is the (partially) warmed one, not the epoch the
	// hub selection saw.
	out.GraphEpoch = s.state.Load().epoch
	return out
}

// topInDegreeSources picks the k highest in-degree nodes (ties broken by
// lower id, via the TopK ordering contract) — the cheap structural proxy
// for high-π nodes.
func topInDegreeSources(g *Graph, k int) []NodeID {
	deg := make([]float64, g.N())
	for v := range deg {
		deg[v] = float64(g.InDegree(NodeID(v)))
	}
	entries := TopKOf(deg, k, -1)
	sources := make([]NodeID, len(entries))
	for i, e := range entries {
		sources[i] = e.Idx
	}
	return sources
}

// failRemaining answers reqs[from:] with ctx's error, keeping the
// counters consistent with the path where each would have gone through
// Query.
func (s *Service) failRemaining(ctx context.Context, reqs []Request, out []Response, from int) {
	st := s.state.Load()
	cerr := ToError(ctx.Err())
	for j := from; j < len(reqs); j++ {
		out[j] = Response{Request: reqs[j], GraphEpoch: st.epoch, Err: cerr}
		s.count(out[j])
	}
}

func (s *Service) worker() {
	defer s.workers.Done()
	for {
		job, ok := s.queue.pop()
		if !ok {
			return
		}
		// A deadline that expired while the job queued is answered here,
		// without computing: queued-but-expired work executing anyway is
		// exactly the overload death spiral this layer exists to break.
		if err := job.ctx.Err(); err != nil || deadlineSpent(job.ctx) {
			if err == nil {
				err = context.DeadlineExceeded
			}
			if errors.Is(err, context.DeadlineExceeded) {
				s.deadlineRejected.Add(1)
			}
			job.resp <- s.fail(job.st, job.req, ToError(err))
			continue
		}
		s.inFlight.Add(1)
		job.resp <- s.execute(job.ctx, job.st, job.req, job.emit)
		s.inFlight.Add(-1)
	}
}

func (s *Service) execute(ctx context.Context, st *graphState, req Request, emit func(Response)) (resp Response) {
	// A panicking algorithm costs its request a CodeInternal response,
	// not the process its life: the worker must survive to drain the
	// queue, and a fleet replica must stay pollable so the router can
	// keep routing around the poisoned query. The stack is captured into
	// stats (panics_recovered / last_panic) and the process log.
	defer func() {
		if v := recover(); v != nil {
			resp = s.fail(st, req, s.recordPanic("query", v))
		}
	}()
	// Anytime serving: error-driven algorithms asked to stream, or to
	// allow a partial answer under a deadline, refine along the accuracy
	// tier ladder instead of computing the target in one shot.
	_, hasDeadline := ctx.Deadline()
	if plan.ErrorDriven(req.Algorithm) && (emit != nil || (req.AllowPartial && hasDeadline)) {
		if tiers := st.planner.Tiers(req.Epsilon); len(tiers) > 1 {
			return s.executeLadder(ctx, st, req, emit, tiers)
		}
	}
	q, err := s.querier(ctx, st, req.Algorithm, req.Epsilon)
	if err != nil {
		return s.fail(st, req, ToError(err))
	}
	start := time.Now()
	res, err := q.SingleSource(ctx, req.Source)
	if err != nil {
		return s.fail(st, req, ToError(err))
	}
	st.planner.Observe(req.Algorithm, req.Epsilon, time.Since(start))
	s.fillCache(st, req, res)
	return s.respond(st, req, res, false)
}

// executeLadder evaluates req coarse→target along tiers (the last tier is
// req.Epsilon verbatim, so the terminal answer — and its cache line — is
// byte-identical to the one-shot path). Intermediate tiers go to emit as
// Partial records; a deadline firing mid-ladder ships the best completed
// tier for AllowPartial requests and the plain coded error for everyone
// else (the strict contract survives streaming).
func (s *Service) executeLadder(ctx context.Context, st *graphState, req Request, emit func(Response), tiers []float64) Response {
	var (
		best    *QueryResult
		bestEps float64 // resolved epsilon best satisfies
		lastDur time.Duration
		lastEps float64 // raw tier value lastDur was measured at
	)
	bestSoFar := func(err error) bool {
		return best != nil && req.AllowPartial &&
			(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled))
	}
	for i, tier := range tiers {
		// Deadline checkpoint: before paying for a tighter tier, project
		// its cost from the last tier's measured latency scaled by the
		// cost model's growth ratio (×1.2 margin). A projection that
		// overshoots the remaining budget ships best-so-far now instead
		// of burning the remainder on work that cannot finish.
		if best != nil && req.AllowPartial {
			if dl, ok := ctx.Deadline(); ok {
				need := time.Duration(1.2 * float64(lastDur) * st.planner.Growth(req.Algorithm, lastEps, tier))
				if time.Until(dl) < need {
					return s.partial(st, req, best, bestEps)
				}
			}
		}
		q, err := s.querier(ctx, st, req.Algorithm, tier)
		if err != nil {
			if bestSoFar(err) {
				return s.partial(st, req, best, bestEps)
			}
			return s.fail(st, req, ToError(err))
		}
		start := time.Now()
		res, err := q.SingleSource(ctx, req.Source)
		if err != nil {
			if bestSoFar(err) {
				return s.partial(st, req, best, bestEps)
			}
			return s.fail(st, req, ToError(err))
		}
		dur := time.Since(start)
		st.planner.Observe(req.Algorithm, tier, dur)
		best, bestEps = res, st.planner.Effective(tier)
		lastDur, lastEps = dur, tier
		if i == len(tiers)-1 {
			break
		}
		if emit != nil {
			r := s.respond(st, req, res, false)
			r.Partial = true
			r.AchievedEpsilon = bestEps
			emit(r)
		}
	}
	s.fillCache(st, req, best)
	return s.respond(st, req, best, false)
}

// partial ships the best completed tier at a deadline: a success-shaped
// answer flagged Partial with the error bound it actually met — the
// anytime contract's alternative to deadline_exceeded.
func (s *Service) partial(st *graphState, req Request, res *QueryResult, achieved float64) Response {
	resp := s.respond(st, req, res, false)
	resp.Partial = true
	resp.AchievedEpsilon = achieved
	s.partialResults.Add(1)
	return resp
}

// fillCache inserts res under this query's epoch — unless the world moved
// on mid-computation, in which case the entry could never be hit again
// (epochs never repeat) and would only squat in the LRU. The re-check
// after put closes the race with a concurrent Update whose evictIf ran
// between our epoch check and the insert. Only complete target-accuracy
// results belong here — partial tiers never enter the cache.
func (s *Service) fillCache(st *graphState, req Request, res *QueryResult) {
	if req.NoCache {
		return
	}
	key := cacheKey{epoch: st.epoch, algorithm: req.Algorithm,
		source: req.Source, epsilon: req.Epsilon}
	if s.state.Load().epoch == st.epoch {
		s.cache.put(key, res)
		if s.state.Load().epoch != st.epoch {
			s.cache.remove(key)
		}
	}
}

// recordPanic converts a recovered panic value into the CodeInternal
// error the caller answers with, bumping the panics_recovered gauge and
// keeping the headline in last_panic. The full stack goes to the process
// log — it is operator material, too big (and too revealing) for a wire
// gauge.
func (s *Service) recordPanic(where string, v any) *Error {
	s.panics.Add(1)
	head := fmt.Sprintf("%s panic: %v", where, v)
	s.lastPanic.Store(&head)
	log.Printf("exactsim: recovered %s\n%s", head, debug.Stack())
	return Errorf(CodeInternal, "exactsim: recovered %s", head)
}

func (s *Service) respond(st *graphState, req Request, res *QueryResult, hit bool) Response {
	resp := Response{Request: req, Result: res, CacheHit: hit, GraphEpoch: st.epoch}
	if req.K > 0 {
		resp.TopK = TopKOf(res.Scores, req.K, req.Source)
	}
	return resp
}

func (s *Service) fail(st *graphState, req Request, err *Error) Response {
	return Response{Request: req, GraphEpoch: st.epoch, Err: err}
}

// querier returns the shared querier for (st.epoch, algorithm, ε). The
// first request for a key spawns a single-flight build under the
// service's lifetime context — deliberately NOT the request's: a short
// per-request deadline must not abort (and so force endless retries of)
// an index build that later requests need. Waiters block on the build
// under their own ctx, so a worker is released at its request's deadline
// even while the build continues. A failed build removes the slot, so a
// later request can retry it.
func (s *Service) querier(ctx context.Context, st *graphState, algorithm string, epsilon float64) (Querier, error) {
	key := querierKey{epoch: st.epoch, algorithm: algorithm, epsilon: epsilon}
	s.querierMu.Lock()
	slot, ok := s.queriers[key]
	if !ok {
		slot = &querierSlot{done: make(chan struct{})}
		s.queriers[key] = slot
		s.evictQueriersLocked()
		go s.build(key, slot, st, algorithm, epsilon)
	}
	s.querierSeq++
	slot.seq = s.querierSeq
	s.querierMu.Unlock()

	select {
	case <-slot.done:
		return slot.q, slot.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// build constructs one querier over st's epoch snapshot and publishes it
// on the slot. On failure the slot is removed from the map so the next
// request retries; after an Update the delete is a no-op (Update already
// dropped the stale key). Every querier of one epoch shares that epoch's
// diagonal sample index: queriers differing only in ε draw identical
// chunk streams, so one warm index serves them all.
func (s *Service) build(key querierKey, slot *querierSlot, st *graphState, algorithm string, epsilon float64) {
	// Deferred in LIFO order: the recover must run before the close so
	// waiters blocked on slot.done observe slot.err, and the slot must be
	// removed so a later request can retry the build.
	defer close(slot.done)
	defer func() {
		if v := recover(); v != nil {
			s.querierMu.Lock()
			delete(s.queriers, key)
			s.querierMu.Unlock()
			slot.err = s.recordPanic("querier build", v)
		}
	}()
	opts := append([]QuerierOption(nil), s.opts.QuerierOptions...)
	if epsilon != 0 {
		opts = append(opts, WithEpsilon(epsilon))
	}
	if st.diagIdx != nil {
		opts = append(opts, WithDiagIndex(st.diagIdx))
	}
	q, err := NewQuerierCtx(s.buildCtx, algorithm, st.g, opts...)
	if err != nil {
		s.querierMu.Lock()
		delete(s.queriers, key)
		s.querierMu.Unlock()
		slot.err = err
	} else {
		slot.q = q
		// A queued query that captured its graphState before an Update
		// can (re-)insert a stale-epoch key after Update's purge already
		// ran; without this check the old-graph index it built would be
		// retained (unreachable — epochs never repeat) until the next
		// Update. Waiters hold the slot pointer, so dropping the map
		// entry is safe in every interleaving: Update-then-build deletes
		// here, build-then-Update deletes in Update.
		if key.epoch < s.state.Load().epoch {
			s.querierMu.Lock()
			delete(s.queriers, key)
			s.querierMu.Unlock()
		}
	}
}

// evictQueriersLocked drops least-recently-used completed queriers beyond
// MaxQueriers. Callers must hold querierMu. In-flight queries (and
// waiters, via their slot pointer) keep using an evicted querier safely —
// the underlying structures are immutable — it just stops being shared.
func (s *Service) evictQueriersLocked() {
	for len(s.queriers) > s.opts.MaxQueriers {
		var (
			oldestKey querierKey
			oldest    *querierSlot
		)
		for k, slot := range s.queriers {
			select {
			case <-slot.done:
			default:
				continue // never evict a build in flight
			}
			if oldest == nil || slot.seq < oldest.seq {
				oldestKey, oldest = k, slot
			}
		}
		if oldest == nil {
			return // everything is mid-build; nothing evictable
		}
		delete(s.queriers, oldestKey)
	}
}

// Stats returns a snapshot of the service counters and gauges.
func (s *Service) Stats() ServiceStats {
	s.querierMu.Lock()
	queriers := len(s.queriers)
	s.querierMu.Unlock()
	st := s.state.Load()
	sheds, codelDrops, sojourn := s.queue.dropStats()
	out := ServiceStats{
		Queries:            s.queries.Load(),
		CacheHits:          s.cacheHits.Load(),
		Errors:             s.errors.Load(),
		CachedResults:      s.cache.len(),
		QueueDepth:         s.queue.depth(),
		InFlight:           int(s.inFlight.Load()),
		Queriers:           queriers,
		GraphEpoch:         st.epoch,
		ShedQueries:        sheds,
		CoDelDrops:         codelDrops,
		DeadlineRejected:   s.deadlineRejected.Load(),
		DegradedQueries:    s.degradedQueries.Load(),
		BrownoutActive:     s.queue.overloaded(),
		QueueSojournMicros: sojourn.Microseconds(),
		AutoPlanned:        s.autoPlanned.Load(),
		PartialResults:     s.partialResults.Load(),
		PanicsRecovered:    s.panics.Load(),
	}
	if p := s.lastPanic.Load(); p != nil {
		out.LastPanic = *p
	}
	if st.diagIdx != nil {
		ds := st.diagIdx.Stats()
		out.DiagIndexEnabled = true
		out.DiagHits = ds.Hits
		out.DiagMisses = ds.Misses
		if looked := ds.Hits + ds.Misses; looked > 0 {
			out.DiagHitRate = float64(ds.Hits) / float64(looked)
		}
		out.DiagEvictions = ds.Evictions
		out.DiagChunks = ds.Chunks
		out.DiagExplores = ds.Explores
		out.DiagResidentBytes = ds.ResidentBytes
		out.DiagBudgetBytes = ds.BudgetBytes
	}
	return out
}

// Graph returns the current graph generation's snapshot.
func (s *Service) Graph() *Graph { return s.state.Load().g }

// Epoch returns the current graph epoch (starts at 1, incremented by
// every Update).
func (s *Service) Epoch() uint64 { return s.state.Load().epoch }

// DefaultAlgorithm returns the algorithm answering requests with an empty
// Algorithm field — AlgorithmAuto unless ServiceOptions pinned a concrete
// method.
func (s *Service) DefaultAlgorithm() string { return s.opts.DefaultAlgorithm }

// Closed reports whether Close has been called. Transports use it for
// readiness: a closed service rejects every query, so it must stop
// advertising itself to routers.
func (s *Service) Closed() bool {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	return s.closed
}

// Close stops the workers, detaches any ServeDynamic subscription, aborts
// in-flight index builds and rejects further queries. It blocks until
// in-flight queries finish; Close is idempotent.
func (s *Service) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.queue.close()
	s.closeMu.Unlock()
	if s.unsubscribe != nil {
		s.unsubscribe()
	}
	s.cancelBuild()
	s.workers.Wait()
	if s.graphCloser != nil {
		// Snapshot-opened services own their graph's mmap'd mapping;
		// release it only after every in-flight query AND snapshot
		// stream has drained. The graph (and slices derived from it)
		// must not be used after Close.
		s.snapshots.Wait()
		s.graphCloser.Close()
	}
}
