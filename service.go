package exactsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrServiceClosed is returned by Query and Batch after Close.
var ErrServiceClosed = errors.New("exactsim: service closed")

// ServiceOptions configures a Service. The zero value is usable: it serves
// with one worker per CPU, a 1024-entry result cache, the "exactsim"
// algorithm and no default deadline.
type ServiceOptions struct {
	// Workers is the size of the query worker pool — the maximum number of
	// queries computing concurrently. 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds queries waiting for a worker; submissions beyond
	// it block in Query until a slot frees (or their context expires).
	// 0 selects 4×Workers.
	QueueDepth int
	// CacheSize is the single-source LRU capacity, keyed by (algorithm,
	// source, ε). 0 selects 1024; negative disables caching.
	CacheSize int
	// MaxQueriers bounds the retained (algorithm, ε) queriers — each can
	// hold a full index, so the map must not grow with every distinct
	// client-supplied epsilon. Least-recently-used queriers are dropped
	// beyond the bound (in-flight queries keep theirs; the structures are
	// immutable). 0 selects 64.
	MaxQueriers int
	// DefaultAlgorithm answers requests with an empty Algorithm field.
	// Empty selects "exactsim".
	DefaultAlgorithm string
	// DefaultTimeout, when positive, bounds every query that has no
	// earlier deadline of its own; exceeding it surfaces as
	// context.DeadlineExceeded in the Response.
	DefaultTimeout time.Duration
	// QuerierOptions are applied to every querier the service constructs,
	// before the per-request epsilon. Use them to pin C, seeds, worker
	// counts or sampling constants service-wide.
	QuerierOptions []QuerierOption
}

func (o *ServiceOptions) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.MaxQueriers <= 0 {
		o.MaxQueriers = 64
	}
	if o.DefaultAlgorithm == "" {
		o.DefaultAlgorithm = "exactsim"
	}
}

// Request names one single-source (or top-k) SimRank query.
type Request struct {
	// Algorithm is a registry name (see Algorithms); empty selects the
	// service default.
	Algorithm string
	// Source is the query node.
	Source NodeID
	// K, when positive, additionally extracts the top-k entries.
	K int
	// Epsilon overrides the error target for this request; 0 keeps the
	// service-wide default. Distinct epsilons get distinct queriers and
	// distinct cache lines.
	Epsilon float64
	// NoCache bypasses the result cache for this request (both lookup and
	// fill) — for callers that need a fresh computation, e.g. right after
	// graph updates elsewhere.
	NoCache bool
}

// Response carries one request's outcome. Err is per-request: a batch can
// mix successes and failures (cancelled queries report ctx.Err()).
type Response struct {
	// Request echoes the (normalized) request this answers.
	Request Request
	// Result is the full single-source result; shared with the cache, so
	// treat Result.Scores as read-only.
	Result *QueryResult
	// TopK is populated when Request.K > 0.
	TopK []Entry
	// CacheHit reports whether Result came from the LRU.
	CacheHit bool
	// Err is the per-request error, nil on success.
	Err error
}

// ServiceStats is a point-in-time counter snapshot.
type ServiceStats struct {
	// Queries is the number of requests answered (including failures).
	Queries int64
	// CacheHits counts requests served from the LRU.
	CacheHits int64
	// Errors counts requests that returned a non-nil Err.
	Errors int64
	// CachedResults is the current LRU entry count.
	CachedResults int
}

// Service is a concurrent SimRank query front-end over one graph: a
// bounded worker pool executing Querier calls, per-query deadlines with
// cancellation honored inside the algorithms' computation loops, an LRU
// cache of single-source results keyed by (algorithm, source, ε), and
// lazy per-algorithm querier construction (an index-based algorithm pays
// its build on first use, not at service start).
//
// Queriers are cached per (algorithm, ε) and shared across workers — the
// underlying engines are immutable after construction, so concurrent
// queries are safe (verified by the race-detector tests).
type Service struct {
	g    *Graph
	opts ServiceOptions

	jobs    chan *serviceJob
	workers sync.WaitGroup

	// buildCtx outlives individual requests: index builds run under it
	// (cancelled only by Close), so one short-deadline request cannot
	// abort-and-retry-forever a long build that later requests need.
	buildCtx    context.Context
	cancelBuild context.CancelFunc

	// closeMu guards the jobs channel against send-after-close: Query
	// sends under RLock, Close closes under Lock.
	closeMu sync.RWMutex
	closed  bool

	// queriers are lazily built per (algorithm, ε), one build in flight
	// per key (single-flight); the map is LRU-bounded by MaxQueriers.
	querierMu  sync.Mutex
	queriers   map[querierKey]*querierSlot
	querierSeq int64

	// inflight dedupes identical cacheable requests: concurrent queries
	// for the same (algorithm, source, ε) elect one leader to compute
	// while the rest wait on its flight — without this, N clients asking
	// for the same cold key would saturate the pool with N copies of the
	// same expensive computation (cache stampede).
	flightMu sync.Mutex
	inflight map[cacheKey]*flight

	cache *resultCache

	queries   atomic.Int64
	cacheHits atomic.Int64
	errors    atomic.Int64
}

// querierKey identifies one constructed querier. Unlike the result
// cacheKey it has no source field — a querier answers every source — and
// the distinct type keeps a future edit from accidentally fragmenting the
// querier map per source.
type querierKey struct {
	algorithm string
	epsilon   float64
}

// querierSlot is the single-flight build state for one (algorithm, ε).
// The creator spawns the build; everyone else waits on done under their
// own context, so a slow index build never blocks a worker past its
// request deadline.
type querierSlot struct {
	done chan struct{}
	q    Querier
	err  error
	seq  int64 // recency for LRU eviction, guarded by Service.querierMu
}

// flight is one in-progress cacheable computation; waiters block on done
// under their own contexts and read resp afterwards.
type flight struct {
	done chan struct{}
	resp Response
}

type serviceJob struct {
	ctx  context.Context
	req  Request
	resp chan Response
}

// NewService starts a query service over g.
func NewService(g *Graph, opts ServiceOptions) (*Service, error) {
	if g == nil {
		return nil, errors.New("exactsim: nil graph")
	}
	opts.normalize()
	if !KnownAlgorithm(opts.DefaultAlgorithm) {
		return nil, fmt.Errorf("exactsim: unknown default algorithm %q (have %v)",
			opts.DefaultAlgorithm, Algorithms())
	}
	buildCtx, cancelBuild := context.WithCancel(context.Background())
	s := &Service{
		g:           g,
		opts:        opts,
		jobs:        make(chan *serviceJob, opts.QueueDepth),
		buildCtx:    buildCtx,
		cancelBuild: cancelBuild,
		queriers:    make(map[querierKey]*querierSlot),
		inflight:    make(map[cacheKey]*flight),
		cache:       newResultCache(opts.CacheSize),
	}
	for w := 0; w < opts.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Query answers one request, blocking until a worker finishes it or ctx
// ends. The per-request deadline (ctx, tightened by DefaultTimeout) is
// live inside the algorithm's iteration loops, so a timeout interrupts
// even a single long-running ExactSim query mid-computation.
func (s *Service) Query(ctx context.Context, req Request) Response {
	resp := s.query(ctx, req)
	s.queries.Add(1)
	if resp.CacheHit {
		s.cacheHits.Add(1)
	}
	if resp.Err != nil {
		s.errors.Add(1)
	}
	return resp
}

func (s *Service) query(ctx context.Context, req Request) Response {
	// Reject before the cache lookup: a closed service answers nothing,
	// not even cached results.
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if closed {
		return Response{Request: req, Err: ErrServiceClosed}
	}
	if req.Algorithm == "" {
		req.Algorithm = s.opts.DefaultAlgorithm
	}
	if !KnownAlgorithm(req.Algorithm) {
		return Response{Request: req, Err: fmt.Errorf(
			"exactsim: unknown algorithm %q (have %v)", req.Algorithm, Algorithms())}
	}
	if req.Source < 0 || int(req.Source) >= s.g.N() {
		return Response{Request: req, Err: fmt.Errorf(
			"exactsim: source %d out of range [0,%d)", req.Source, s.g.N())}
	}
	// Epsilon is part of the querier and cache keys, so screen it here:
	// a NaN key would never match itself and leak a querier slot per
	// request (0 is the "service default" sentinel).
	if math.IsNaN(req.Epsilon) || math.IsInf(req.Epsilon, 0) ||
		req.Epsilon < 0 || req.Epsilon >= 1 {
		return Response{Request: req, Err: fmt.Errorf(
			"exactsim: epsilon %g outside (0,1) (0 = service default)", req.Epsilon)}
	}

	if req.NoCache {
		return s.dispatch(ctx, req)
	}

	// Cacheable path: cache lookup, then request-level single-flight —
	// concurrent queries for the same cold key elect one leader to
	// compute; the rest wait on its flight (or their own context) instead
	// of duplicating the work across the pool.
	key := cacheKey{algorithm: req.Algorithm, source: req.Source, epsilon: req.Epsilon}
	for {
		if res, ok := s.cache.get(key); ok {
			return s.respond(req, res, true)
		}
		s.flightMu.Lock()
		if f, ok := s.inflight[key]; ok {
			s.flightMu.Unlock()
			select {
			case <-f.done:
				if f.resp.Err == nil && f.resp.Result != nil {
					// Served by the leader's computation: a hit as far as
					// this request is concerned.
					return s.respond(req, f.resp.Result, true)
				}
				// The leader failed (its deadline, a build error): its
				// error is not ours — loop and retry, perhaps as leader.
				continue
			case <-ctx.Done():
				return Response{Request: req, Err: ctx.Err()}
			}
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		s.flightMu.Unlock()

		resp := s.dispatch(ctx, req)

		f.resp = resp
		s.flightMu.Lock()
		delete(s.inflight, key)
		s.flightMu.Unlock()
		close(f.done)
		return resp
	}
}

// dispatch queues one request on the worker pool and waits for its
// response under ctx (tightened by DefaultTimeout).
func (s *Service) dispatch(ctx context.Context, req Request) Response {
	if s.opts.DefaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.DefaultTimeout)
		defer cancel()
	}

	job := &serviceJob{ctx: ctx, req: req, resp: make(chan Response, 1)}
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return Response{Request: req, Err: ErrServiceClosed}
	}
	select {
	case s.jobs <- job:
		s.closeMu.RUnlock()
	case <-ctx.Done():
		s.closeMu.RUnlock()
		return Response{Request: req, Err: ctx.Err()}
	}

	select {
	case resp := <-job.resp:
		return resp
	case <-ctx.Done():
		// The worker that picks the job up will see the dead context and
		// drop it without computing.
		return Response{Request: req, Err: ctx.Err()}
	}
}

// Batch answers many requests concurrently through the worker pool and
// returns responses in request order. Each response carries its own Err;
// Batch itself only fails fast on a closed service. Submission is bounded
// by Workers+QueueDepth in-flight goroutines — exactly what the pool can
// hold — so a million-request batch does not allocate a million stacks
// up front.
func (s *Service) Batch(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	sem := make(chan struct{}, s.opts.Workers+s.opts.QueueDepth)
	var wg sync.WaitGroup
	for i, req := range reqs {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = s.Query(ctx, req)
		}(i, req)
	}
	wg.Wait()
	return out
}

func (s *Service) worker() {
	defer s.workers.Done()
	for job := range s.jobs {
		if err := job.ctx.Err(); err != nil {
			job.resp <- Response{Request: job.req, Err: err}
			continue
		}
		job.resp <- s.execute(job.ctx, job.req)
	}
}

func (s *Service) execute(ctx context.Context, req Request) Response {
	q, err := s.querier(ctx, req.Algorithm, req.Epsilon)
	if err != nil {
		return Response{Request: req, Err: err}
	}
	res, err := q.SingleSource(ctx, req.Source)
	if err != nil {
		return Response{Request: req, Err: err}
	}
	if !req.NoCache {
		s.cache.put(cacheKey{algorithm: req.Algorithm, source: req.Source,
			epsilon: req.Epsilon}, res)
	}
	return s.respond(req, res, false)
}

func (s *Service) respond(req Request, res *QueryResult, hit bool) Response {
	resp := Response{Request: req, Result: res, CacheHit: hit}
	if req.K > 0 {
		resp.TopK = TopKOf(res.Scores, req.K, req.Source)
	}
	return resp
}

// querier returns the shared querier for (algorithm, ε). The first
// request for a key spawns a single-flight build under the service's
// lifetime context — deliberately NOT the request's: a short per-request
// deadline must not abort (and so force endless retries of) an index
// build that later requests need. Waiters block on the build under their
// own ctx, so a worker is released at its request's deadline even while
// the build continues. A failed build removes the slot, so a later
// request can retry it.
func (s *Service) querier(ctx context.Context, algorithm string, epsilon float64) (Querier, error) {
	key := querierKey{algorithm: algorithm, epsilon: epsilon}
	s.querierMu.Lock()
	slot, ok := s.queriers[key]
	if !ok {
		slot = &querierSlot{done: make(chan struct{})}
		s.queriers[key] = slot
		s.evictQueriersLocked()
		go s.build(key, slot, algorithm, epsilon)
	}
	s.querierSeq++
	slot.seq = s.querierSeq
	s.querierMu.Unlock()

	select {
	case <-slot.done:
		return slot.q, slot.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// build constructs one querier and publishes it on the slot. On failure
// the slot is removed from the map so the next request retries.
func (s *Service) build(key querierKey, slot *querierSlot, algorithm string, epsilon float64) {
	opts := append([]QuerierOption(nil), s.opts.QuerierOptions...)
	if epsilon != 0 {
		opts = append(opts, WithEpsilon(epsilon))
	}
	q, err := NewQuerierCtx(s.buildCtx, algorithm, s.g, opts...)
	if err != nil {
		s.querierMu.Lock()
		delete(s.queriers, key)
		s.querierMu.Unlock()
		slot.err = err
	} else {
		slot.q = q
	}
	close(slot.done)
}

// evictQueriersLocked drops least-recently-used completed queriers beyond
// MaxQueriers. Callers must hold querierMu. In-flight queries (and
// waiters, via their slot pointer) keep using an evicted querier safely —
// the underlying structures are immutable — it just stops being shared.
func (s *Service) evictQueriersLocked() {
	for len(s.queriers) > s.opts.MaxQueriers {
		var (
			oldestKey querierKey
			oldest    *querierSlot
		)
		for k, slot := range s.queriers {
			select {
			case <-slot.done:
			default:
				continue // never evict a build in flight
			}
			if oldest == nil || slot.seq < oldest.seq {
				oldestKey, oldest = k, slot
			}
		}
		if oldest == nil {
			return // everything is mid-build; nothing evictable
		}
		delete(s.queriers, oldestKey)
	}
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Queries:       s.queries.Load(),
		CacheHits:     s.cacheHits.Load(),
		Errors:        s.errors.Load(),
		CachedResults: s.cache.len(),
	}
}

// Graph returns the graph the service answers over.
func (s *Service) Graph() *Graph { return s.g }

// Close stops the workers, aborts in-flight index builds and rejects
// further queries. It blocks until in-flight queries finish; Close is
// idempotent.
func (s *Service) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.closeMu.Unlock()
	s.cancelBuild()
	s.workers.Wait()
}
