package exactsim_test

import (
	"math"
	"testing"

	exactsim "github.com/exactsim/exactsim"
)

// TestIntegrationFullStudy replays the paper's study end-to-end on one
// medium graph: power-method ground truth, every method queried, the
// paper's qualitative findings asserted. This is the repository's
// spot-check that all the pieces cohere through the public API.
func TestIntegrationFullStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	g, err := exactsim.GenerateDataset("GQ", 0.08) // ~420 nodes
	if err != nil {
		t.Fatal(err)
	}
	truth := exactsim.PowerMethod(g, exactsim.DefaultC, 0)
	src := exactsim.NodeID(11)
	truthRow := truth.Row(int(src))

	// ExactSim at eps=1e-4 must beat every approximate method on MaxError.
	eng, err := exactsim.New(g, exactsim.Options{Epsilon: 1e-4, Optimized: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SingleSource(src)
	if err != nil {
		t.Fatal(err)
	}
	exactErr := exactsim.MaxError(res.Scores, truthRow)
	if exactErr > 1e-4 {
		t.Fatalf("ExactSim error %g above configured eps", exactErr)
	}

	methods := map[string][]float64{
		"mc": exactsim.BuildMCIndex(g,
			exactsim.MCParams{C: 0.6, L: 15, R: 300, Seed: 3}).SingleSource(src),
		"parsim": exactsim.NewParSim(g,
			exactsim.ParSimParams{C: 0.6, L: 40}).SingleSource(src),
		"linearization": exactsim.BuildLinearization(g,
			exactsim.LinearizationParams{C: 0.6, Eps: 0.02, Seed: 4}).SingleSource(src),
		"prsim": exactsim.BuildPRSim(g,
			exactsim.PRSimParams{C: 0.6, Eps: 0.02, Seed: 5}).SingleSource(src),
		"probesim": exactsim.NewProbeSim(g,
			exactsim.ProbeSimParams{C: 0.6, Eps: 0.02, Seed: 6}).SingleSource(src),
	}
	for name, scores := range methods {
		err := exactsim.MaxError(scores, truthRow)
		if err <= exactErr {
			t.Fatalf("%s error %g should exceed ExactSim's %g", name, err, exactErr)
		}
		if err > 0.2 {
			t.Fatalf("%s error %g implausibly large", name, err)
		}
		// ranking metrics must be self-consistent
		p := exactsim.PrecisionAtK(scores, truthRow, 20, src)
		n := exactsim.NDCGAtK(scores, truthRow, 20, src)
		if p < 0 || p > 1 || n < 0 || n > 1+1e-9 {
			t.Fatalf("%s: precision %g / ndcg %g out of range", name, p, n)
		}
	}

	// ParSim bias floor: error identical for L=40 and L=400.
	ps40 := methods["parsim"]
	ps400 := exactsim.NewParSim(g, exactsim.ParSimParams{C: 0.6, L: 400}).SingleSource(src)
	e40 := exactsim.MaxError(ps40, truthRow)
	e400 := exactsim.MaxError(ps400, truthRow)
	if math.Abs(e40-e400) > 1e-6 {
		t.Fatalf("ParSim floor not flat: %g vs %g", e40, e400)
	}
	if e400 < 1e-4 {
		t.Fatalf("ParSim bias floor %g suspiciously low", e400)
	}

	// The ranking metrics should prefer the exact result.
	if tau := exactsim.KendallTauAtK(res.Scores, truthRow, 50, src); tau < 0.95 {
		t.Fatalf("ExactSim tau@50 = %g", tau)
	}

	// Pooling must rank ExactSim at the top among all participants.
	var entries []exactsim.PoolEntry
	entries = append(entries, exactsim.PoolEntry{
		Algorithm: "exactsim", TopK: exactsim.TopKOf(res.Scores, 25, src)})
	for name, scores := range methods {
		entries = append(entries, exactsim.PoolEntry{
			Algorithm: name, TopK: exactsim.TopKOf(scores, 25, src)})
	}
	pool := exactsim.Pool(g, 0.6, src, 25, entries, 50000, 9)
	for name, prec := range pool.Precision {
		if prec > pool.Precision["exactsim"]+0.05 {
			t.Fatalf("pooling ranked %s (%g) above exactsim (%g)",
				name, prec, pool.Precision["exactsim"])
		}
	}

	// Dynamic path: removing the source's edges must change its result.
	dyn := exactsim.DynamicFrom(g)
	removed := 0
	for _, v := range g.OutNeighbors(src) {
		if dyn.RemoveUndirected(src, v) {
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("source had no edges to remove")
	}
	eng2, err := exactsim.New(dyn.Snapshot(), exactsim.Options{Epsilon: 1e-3, Optimized: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.SingleSource(src)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range res2.Scores {
		if exactsim.NodeID(j) != src && v > 1e-3 {
			t.Fatalf("isolated source still similar to %d (%g)", j, v)
		}
	}
}
