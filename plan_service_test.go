package exactsim

import (
	"context"
	"math"
	"testing"
	"time"
)

// newPlanService builds a service over g with a pinned seed so replicas
// (and repeated runs) answer bit-identically.
func newPlanService(t *testing.T, g *Graph, opts ...QuerierOption) *Service {
	t.Helper()
	if opts == nil {
		opts = []QuerierOption{WithEpsilon(0.01), WithSeed(1)}
	}
	svc, err := NewService(g, ServiceOptions{Workers: 2, QuerierOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// ringGraph builds a directed n-cycle: the flattest possible degree
// sequence (every in-degree 1), which above the planner's size gate
// exercises the large-flat → probesim route.
func ringGraph(n int) *Graph {
	b := NewGraphBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(NodeID(v), NodeID((v+1)%n))
	}
	return b.Build()
}

// sameScores asserts bit-identical score vectors — the conformance
// contract is byte-for-byte, not approximately-equal.
func sameScores(t *testing.T, a, b *QueryResult) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("nil result: %v vs %v", a, b)
	}
	if len(a.Scores) != len(b.Scores) {
		t.Fatalf("score lengths differ: %d vs %d", len(a.Scores), len(b.Scores))
	}
	for i := range a.Scores {
		if math.Float64bits(a.Scores[i]) != math.Float64bits(b.Scores[i]) {
			t.Fatalf("scores diverge at %d: %x vs %x", i,
				math.Float64bits(a.Scores[i]), math.Float64bits(b.Scores[i]))
		}
	}
}

// TestAutoConformance: for every strict planner route reachable on a
// real graph, "auto" must answer byte-for-byte what explicitly asking
// for the planned method would — the determinism carve-out that keeps
// planned requests hedgeable and cacheable under the planned key.
func TestAutoConformance(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name       string
		graph      *Graph
		req        Request
		wantMethod string
		wantReason string
	}{
		{"small-default", GenerateBarabasiAlbert(400, 3, 5),
			Request{Source: 7, K: 5}, "exactsim", "small-graph-default"},
		{"small-explicit-auto", GenerateBarabasiAlbert(400, 3, 5),
			Request{Algorithm: AlgorithmAuto, Source: 7, Epsilon: 0.05}, "exactsim", "small-graph-default"},
		{"tight-epsilon", GenerateBarabasiAlbert(400, 3, 5),
			Request{Source: 7, Epsilon: 0.002}, "exactsim", "tight-epsilon"},
		{"large-flat", ringGraph(60_000),
			Request{Source: 42, Epsilon: 0.05}, "probesim", "large-flat"},
		{"large-power-law", GenerateBarabasiAlbert(60_000, 3, 5),
			Request{Source: 42, Epsilon: 0.05}, "prsim", "large-power-law"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc := newPlanService(t, tc.graph)

			auto := tc.req
			auto.Algorithm = AlgorithmAuto
			auto.NoCache = true
			ra := svc.Query(ctx, auto)
			if ra.Err != nil {
				t.Fatal(ra.Err)
			}
			if ra.Plan == nil {
				t.Fatal("auto response carries no Plan block")
			}
			if ra.Plan.Algorithm != tc.wantMethod || ra.Plan.Reason != tc.wantReason {
				t.Fatalf("planned %s (%s), want %s (%s)",
					ra.Plan.Algorithm, ra.Plan.Reason, tc.wantMethod, tc.wantReason)
			}
			if ra.Request.Algorithm != tc.wantMethod {
				t.Fatalf("echoed request algorithm %q, want the planned %q",
					ra.Request.Algorithm, tc.wantMethod)
			}

			explicit := tc.req
			explicit.Algorithm = tc.wantMethod
			explicit.NoCache = true
			re := svc.Query(ctx, explicit)
			if re.Err != nil {
				t.Fatal(re.Err)
			}
			sameScores(t, ra.Result, re.Result)

			// Cache identity: an auto answer lives under the planned key,
			// so the explicit method's next query is a hit.
			cached := tc.req
			cached.Algorithm = AlgorithmAuto
			if r := svc.Query(ctx, cached); r.Err != nil {
				t.Fatal(r.Err)
			}
			cached.Algorithm = tc.wantMethod
			if r := svc.Query(ctx, cached); r.Err != nil || !r.CacheHit {
				t.Fatalf("explicit query after auto: hit=%v err=%v — planned and explicit keys diverged",
					r.CacheHit, r.Err)
			}
		})
	}
}

// TestAutoDefaultAlgorithm: the service default is "auto" when no
// DefaultAlgorithm is configured, empty-algorithm requests route through
// the planner, and the AutoPlanned stat counts them.
func TestAutoDefaultAlgorithm(t *testing.T) {
	svc := newPlanService(t, GenerateBarabasiAlbert(300, 3, 9))
	if got := svc.DefaultAlgorithm(); got != AlgorithmAuto {
		t.Fatalf("DefaultAlgorithm() = %q, want %q", got, AlgorithmAuto)
	}
	r := svc.Query(context.Background(), Request{Source: 3})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Plan == nil {
		t.Fatal("empty-algorithm request carries no Plan block")
	}
	if st := svc.Stats(); st.AutoPlanned != 1 {
		t.Fatalf("AutoPlanned = %d, want 1", st.AutoPlanned)
	}
	// Pinning a concrete default restores the old behavior: no planning.
	svc2, err := NewService(GenerateBarabasiAlbert(300, 3, 9), ServiceOptions{
		Workers: 1, DefaultAlgorithm: "probesim",
		QuerierOptions: []QuerierOption{WithEpsilon(0.05), WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	r = svc2.Query(context.Background(), Request{Source: 3})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Plan != nil {
		t.Fatalf("pinned-default request planned anyway: %+v", r.Plan)
	}
	if r.Request.Algorithm != "probesim" {
		t.Fatalf("defaulted algorithm %q", r.Request.Algorithm)
	}
}

// TestRequestNormalization: every malformed field is rejected at the
// Service boundary with the coded error, uniformly for Query and Batch.
func TestRequestNormalization(t *testing.T) {
	svc := newPlanService(t, GenerateBarabasiAlbert(100, 3, 3))
	ctx := context.Background()
	cases := []struct {
		name string
		req  Request
		want ErrorCode
	}{
		{"negative-k", Request{Source: 1, K: -1}, CodeInvalidArgument},
		{"negative-epsilon", Request{Source: 1, Epsilon: -0.5}, CodeInvalidArgument},
		{"epsilon-one", Request{Source: 1, Epsilon: 1}, CodeInvalidArgument},
		{"epsilon-above-one", Request{Source: 1, Epsilon: 2}, CodeInvalidArgument},
		{"epsilon-nan", Request{Source: 1, Epsilon: math.NaN()}, CodeInvalidArgument},
		{"epsilon-inf", Request{Source: 1, Epsilon: math.Inf(1)}, CodeInvalidArgument},
		{"unknown-priority", Request{Source: 1, Priority: "urgent"}, CodeInvalidArgument},
		{"negative-source", Request{Source: -1}, CodeInvalidArgument},
		{"source-out-of-range", Request{Source: 100}, CodeInvalidArgument},
		{"unknown-algorithm", Request{Source: 1, Algorithm: "nope"}, CodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := svc.Query(ctx, tc.req)
			if r.Err == nil || r.Err.Code != tc.want {
				t.Fatalf("Query(%+v).Err = %v, want code %s", tc.req, r.Err, tc.want)
			}
			// The same screen answers on the batch path.
			resps := svc.Batch(ctx, []Request{tc.req})
			if resps[0].Err == nil || resps[0].Err.Code != tc.want {
				t.Fatalf("Batch(%+v).Err = %v, want code %s", tc.req, resps[0].Err, tc.want)
			}
		})
	}
	// The screens reject before any worker dispatch, so a valid request
	// still flows afterward.
	if r := svc.Query(ctx, Request{Source: 1}); r.Err != nil {
		t.Fatalf("valid request after rejections: %v", r.Err)
	}
}

// TestPartialBestSoFar: an opted-in request whose deadline cannot afford
// its target accuracy gets the best completed tier — Partial, Err nil,
// with the achieved error bound — never a bare deadline_exceeded.
func TestPartialBestSoFar(t *testing.T) {
	svc := newPlanService(t, GenerateBarabasiAlbert(200, 3, 11))

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	// ε=2.5e-4 = 0.064/4⁴, so the ladder starts at its cheapest possible
	// rung (0.064: ~15ms here, ~330ms race-instrumented — always inside
	// the budget) while the terminal rung alone costs about the whole
	// budget and the full ladder roughly twice it, so the checkpoint
	// always bails mid-ladder. The planner's clamp-bounded estimate for
	// the target stays under the budget, so the request is planned at
	// face value and the deadline bites during execution.
	req := Request{Source: 5, Epsilon: 2.5e-4, AllowPartial: true}
	r := svc.Query(ctx, req)
	if r.Err != nil {
		t.Fatalf("opted-in deadline query returned an error: %v", r.Err)
	}
	if !r.Partial {
		t.Fatalf("response not Partial: %+v", r)
	}
	if r.AchievedEpsilon <= 2.5e-4 || r.AchievedEpsilon > 0.064 {
		t.Fatalf("AchievedEpsilon %g outside the ladder", r.AchievedEpsilon)
	}
	if r.Result == nil || len(r.Result.Scores) == 0 {
		t.Fatal("partial response carries no result")
	}
	if st := svc.Stats(); st.PartialResults != 1 {
		t.Fatalf("PartialResults = %d, want 1", st.PartialResults)
	}

	// The determinism carve-out: without the opt-in the same request gets
	// the strict contract — target accuracy or the coded deadline error.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel2()
	r2 := svc.Query(ctx2, Request{Source: 6, Epsilon: 1e-6})
	if r2.Err == nil || r2.Err.Code != CodeDeadlineExceeded {
		t.Fatalf("strict deadline query: %+v, want deadline_exceeded", r2.Err)
	}
	if r2.Partial || r2.Result != nil {
		t.Fatalf("strict request answered partially: %+v", r2)
	}
}

// TestPartialNeverCached: a best-so-far tier must not poison the cache —
// the next caller with budget deserves the full answer.
func TestPartialNeverCached(t *testing.T) {
	svc := newPlanService(t, GenerateBarabasiAlbert(200, 3, 11))
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	// ε=1e-3: the coarse rungs always beat the deadline, the terminal
	// rung's checkpoint estimate never fits what remains (see
	// TestPartialBestSoFar for the margin argument) — but an unbounded
	// retry completes in seconds.
	r := svc.Query(ctx, Request{Source: 5, Epsilon: 1e-3, AllowPartial: true})
	cancel()
	if r.Err != nil || !r.Partial {
		t.Fatalf("setup: want a partial answer, got %+v err=%v", r, r.Err)
	}
	// Unbounded retry of the same key: must compute fresh, not hit.
	full := svc.Query(context.Background(), Request{Source: 5, Epsilon: 1e-3})
	if full.Err != nil {
		t.Fatal(full.Err)
	}
	if full.CacheHit || full.Partial {
		t.Fatalf("full retry served the partial tier: hit=%v partial=%v", full.CacheHit, full.Partial)
	}
}

// TestQueryStreamFinalMatchesQuery: the stream's terminal record is
// byte-for-byte the non-streaming answer, refinements arrive
// coarse→tight and are all flagged Partial.
func TestQueryStreamFinalMatchesQuery(t *testing.T) {
	svc := newPlanService(t, GenerateBarabasiAlbert(300, 3, 13))
	ctx := context.Background()
	req := Request{Source: 8, Epsilon: 0.001, K: 5}

	var refinements []Response
	final := svc.QueryStream(ctx, req, func(r Response) { refinements = append(refinements, r) })
	if final.Err != nil {
		t.Fatal(final.Err)
	}
	if final.Partial {
		t.Fatal("terminal record flagged Partial")
	}
	if len(refinements) == 0 {
		t.Fatal("no refinements emitted for a multi-tier ladder")
	}
	prev := math.Inf(1)
	for i, ref := range refinements {
		if !ref.Partial {
			t.Fatalf("refinement %d not flagged Partial: %+v", i, ref)
		}
		if ref.AchievedEpsilon <= 0 || ref.AchievedEpsilon >= prev {
			t.Fatalf("refinement %d epsilon %g not tightening (prev %g)", i, ref.AchievedEpsilon, prev)
		}
		prev = ref.AchievedEpsilon
		if ref.Result == nil {
			t.Fatalf("refinement %d carries no result", i)
		}
	}

	// Byte-for-byte identity with the plain query path (fresh service so
	// neither run sees the other's cache).
	svc2 := newPlanService(t, GenerateBarabasiAlbert(300, 3, 13))
	plain := svc2.Query(ctx, req)
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}
	sameScores(t, final.Result, plain.Result)
	if len(final.TopK) != len(plain.TopK) {
		t.Fatalf("top-k lengths differ: %d vs %d", len(final.TopK), len(plain.TopK))
	}
	for i := range final.TopK {
		if final.TopK[i] != plain.TopK[i] {
			t.Fatalf("top-k[%d] differs: %+v vs %+v", i, final.TopK[i], plain.TopK[i])
		}
	}

	// The stream's final tier fills the cache under the same key the
	// plain path uses.
	if r := svc.Query(ctx, req); r.Err != nil || !r.CacheHit {
		t.Fatalf("query after stream: hit=%v err=%v", r.CacheHit, r.Err)
	}
}

// TestQueryStreamNonLadderAlgorithm: a stream for a method the ladder
// does not apply to (ε-independent cost) degenerates gracefully — no
// refinements, just the terminal answer.
func TestQueryStreamNonLadderAlgorithm(t *testing.T) {
	svc := newPlanService(t, GenerateBarabasiAlbert(200, 3, 17))
	calls := 0
	final := svc.QueryStream(context.Background(),
		Request{Algorithm: "mc", Source: 4},
		func(Response) { calls++ })
	if final.Err != nil {
		t.Fatal(final.Err)
	}
	if calls != 0 {
		t.Fatalf("mc stream emitted %d refinements, want 0", calls)
	}
	if final.Result == nil {
		t.Fatal("no terminal result")
	}
}

// TestPlanEstimates: the capability surface the HTTP layer serves —
// one calibrated cost row per registry method.
func TestPlanEstimates(t *testing.T) {
	svc := newPlanService(t, GenerateBarabasiAlbert(200, 3, 19))
	ests := svc.PlanEstimates()
	if len(ests) != len(Algorithms()) {
		t.Fatalf("PlanEstimates() returned %d rows, want %d", len(ests), len(Algorithms()))
	}
	for _, e := range ests {
		if e.Units <= 0 || e.Nanos <= 0 {
			t.Fatalf("degenerate estimate: %+v", e)
		}
		caps, ok := DescribeAlgorithm(e.Name)
		if !ok {
			t.Fatalf("estimate for %q has no capability entry", e.Name)
		}
		if caps.Name != e.Name {
			t.Fatalf("caps name %q != estimate name %q", caps.Name, e.Name)
		}
	}
}
