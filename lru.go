package exactsim

import (
	"container/list"
	"sync"
)

// cacheKey identifies one cached single-source answer. Epsilon is part of
// the key because the same (algorithm, source) pair answers differently at
// different error targets; 0 means "service default". The epoch pins an
// entry to the graph generation it was computed on — epochs never repeat,
// so a post-update query can never match a pre-update entry.
type cacheKey struct {
	epoch     uint64
	algorithm string
	source    NodeID
	epsilon   float64
}

// resultCache is a fixed-capacity LRU over full single-source results.
// Top-k requests are served from the cached full vector, so one cached
// query answers every k. Safe for concurrent use.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

type cacheSlot struct {
	key cacheKey
	res *QueryResult
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key cacheKey) (*QueryResult, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheSlot).res, true
}

// put inserts (or refreshes) a result, evicting the least recently used
// entry when over capacity. The cached *QueryResult is shared with every
// future hit; callers must treat it as read-only.
func (c *resultCache) put(key cacheKey, res *QueryResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheSlot).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&cacheSlot{key: key, res: res})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheSlot).key)
	}
}

// evictIf removes every entry whose key matches drop — Service.Update
// uses it to reclaim the capacity stale-epoch entries would otherwise
// squat on until natural eviction.
func (c *resultCache) evictIf(drop func(cacheKey) bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if key := el.Value.(*cacheSlot).key; drop(key) {
			c.ll.Remove(el)
			delete(c.items, key)
		}
	}
}

// remove deletes one entry if present — the undo half of the
// put-then-recheck dance Service.execute does against concurrent epoch
// updates.
func (c *resultCache) remove(key cacheKey) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// len reports the current entry count.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
