package exactsim_test

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

// TestServiceUpdateInvalidatesCache: Update bumps the epoch, evicts every
// stale cache line, and the next identical request recomputes on the new
// graph — the "post-update queries never serve pre-update cache entries"
// half of the live-serving contract.
func TestServiceUpdateInvalidatesCache(t *testing.T) {
	g1 := exactsim.GenerateBarabasiAlbert(300, 3, 1)
	g2 := exactsim.GenerateBarabasiAlbert(400, 3, 2)
	svc, err := exactsim.NewService(g1, exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	req := exactsim.Request{Source: 3}
	first := svc.Query(context.Background(), req)
	if first.Err != nil || first.GraphEpoch != 1 || len(first.Result.Scores) != g1.N() {
		t.Fatalf("first query: err=%v epoch=%d n=%d", first.Err, first.GraphEpoch, len(first.Result.Scores))
	}
	if hit := svc.Query(context.Background(), req); !hit.CacheHit || hit.GraphEpoch != 1 {
		t.Fatalf("warm query: hit=%v epoch=%d", hit.CacheHit, hit.GraphEpoch)
	}

	ep, err := svc.Update(g2)
	if err != nil || ep != 2 {
		t.Fatalf("Update: epoch=%d err=%v", ep, err)
	}
	st := svc.Stats()
	if st.GraphEpoch != 2 {
		t.Fatalf("Stats.GraphEpoch = %d after update", st.GraphEpoch)
	}
	if st.CachedResults != 0 {
		t.Fatalf("stale cache entries survived the update: %d", st.CachedResults)
	}
	if svc.Graph() != g2 || svc.Epoch() != 2 {
		t.Fatal("Graph()/Epoch() do not reflect the update")
	}

	post := svc.Query(context.Background(), req)
	if post.Err != nil {
		t.Fatal(post.Err)
	}
	if post.CacheHit {
		t.Fatal("post-update query served a pre-update cache entry")
	}
	if post.GraphEpoch != 2 || len(post.Result.Scores) != g2.N() {
		t.Fatalf("post-update query: epoch=%d n=%d, want epoch 2 over n=%d",
			post.GraphEpoch, len(post.Result.Scores), g2.N())
	}
	if again := svc.Query(context.Background(), req); !again.CacheHit || again.GraphEpoch != 2 {
		t.Fatalf("new-epoch cache line not filled: hit=%v epoch=%d", again.CacheHit, again.GraphEpoch)
	}
}

// TestServiceLiveUpdateRace is the race-detector proof of live update
// safety: queries hammer the service while updates alternate between two
// graphs of different sizes, and every response's score vector must match
// the graph of the epoch it claims — an epoch/snapshot mix-up would show
// up as a wrong vector length (and -race would flag unsynchronized state).
func TestServiceLiveUpdateRace(t *testing.T) {
	gOdd := exactsim.GenerateBarabasiAlbert(300, 3, 1)  // epochs 1, 3, 5, ...
	gEven := exactsim.GenerateBarabasiAlbert(400, 3, 2) // epochs 2, 4, 6, ...
	expectN := func(epoch uint64) int {
		if epoch%2 == 1 {
			return gOdd.N()
		}
		return gEven.N()
	}
	svc, err := exactsim.NewService(gOdd, exactsim.ServiceOptions{
		Workers:        4,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(6), exactsim.WithIterations(15)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const updates = 20
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < updates; i++ {
			g := gEven
			if i%2 == 1 {
				g = gOdd
			}
			ep, err := svc.Update(g)
			if err != nil || ep != uint64(i+2) {
				t.Errorf("update %d: epoch=%d err=%v", i, ep, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const queryGoroutines = 6
	for gr := 0; gr < queryGoroutines; gr++ {
		wg.Add(1)
		go func(gr int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp := svc.Query(context.Background(), exactsim.Request{
					Algorithm: "parsim",
					// Few distinct sources, so cache lines race updates too.
					Source: exactsim.NodeID((gr + i) % 7),
				})
				if resp.Err != nil {
					t.Errorf("query: %v", resp.Err)
					return
				}
				if resp.GraphEpoch < 1 || resp.GraphEpoch > updates+1 {
					t.Errorf("epoch %d out of range", resp.GraphEpoch)
					return
				}
				if got, want := len(resp.Result.Scores), expectN(resp.GraphEpoch); got != want {
					t.Errorf("epoch %d answered with %d scores, want %d — mixed epochs",
						resp.GraphEpoch, got, want)
					return
				}
			}
		}(gr)
	}
	wg.Wait()

	// After the dust settles, the final epoch serves fresh, consistent
	// entries only.
	final := svc.Query(context.Background(), exactsim.Request{Algorithm: "parsim", Source: 0})
	if final.Err != nil || final.GraphEpoch != updates+1 {
		t.Fatalf("final query: err=%v epoch=%d want %d", final.Err, final.GraphEpoch, updates+1)
	}
	if len(final.Result.Scores) != expectN(updates+1) {
		t.Fatal("final epoch serves the wrong graph")
	}
}

// TestServeDynamicPublish: a service constructed over a DynamicGraph
// follows Publish — each published snapshot bumps the epoch and answers
// reflect the mutated graph with zero index maintenance.
func TestServeDynamicPublish(t *testing.T) {
	g0 := exactsim.GenerateBarabasiAlbert(200, 3, 9)
	dyn := exactsim.DynamicFrom(g0)
	svc, err := exactsim.ServeDynamic(dyn, exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	before := svc.Query(context.Background(), exactsim.Request{Source: 0})
	if before.Err != nil || before.GraphEpoch != 1 || len(before.Result.Scores) != g0.N() {
		t.Fatalf("pre-publish query: err=%v epoch=%d n=%d", before.Err, before.GraphEpoch, len(before.Result.Scores))
	}

	// A mutation batch is invisible until Publish...
	id := dyn.AddNode()
	dyn.AddEdge(id, 0)
	dyn.AddEdge(0, id)
	if svc.Epoch() != 1 {
		t.Fatal("epoch moved before Publish")
	}
	dyn.Publish()

	if svc.Epoch() != 2 {
		t.Fatalf("epoch %d after Publish, want 2", svc.Epoch())
	}
	after := svc.Query(context.Background(), exactsim.Request{Source: id, NoCache: true})
	if after.Err != nil {
		t.Fatal(after.Err)
	}
	if after.GraphEpoch != 2 || len(after.Result.Scores) != g0.N()+1 {
		t.Fatalf("post-publish query: epoch=%d n=%d, want epoch 2 over n=%d",
			after.GraphEpoch, len(after.Result.Scores), g0.N()+1)
	}

	// Close detaches the subscription: a later Publish must not panic or
	// resurrect the closed service.
	svc.Close()
	dyn.AddEdge(1, 2)
	dyn.Publish()
}

// TestServiceQuerierLRUConcurrent: MaxQueriers pressure with single-flight
// builds in flight — concurrent requests across many distinct epsilons
// must all answer correctly while eviction keeps the retained querier map
// bounded.
func TestServiceQuerierLRUConcurrent(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(300, 3, 11)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:          4,
		MaxQueriers:      2,
		DefaultAlgorithm: "parsim",
		QuerierOptions:   []exactsim.QuerierOption{exactsim.WithIterations(20), exactsim.WithSeed(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const goroutines = 8
	const perGoroutine = 6
	var wg sync.WaitGroup
	for gr := 0; gr < goroutines; gr++ {
		wg.Add(1)
		go func(gr int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				// goroutines share some epsilons (single-flight builds race)
				// and introduce fresh ones (eviction under pressure).
				eps := 0.01 * float64(1+(gr*perGoroutine+i)%10)
				resp := svc.Query(context.Background(), exactsim.Request{
					Source: exactsim.NodeID(i), Epsilon: eps,
				})
				if resp.Err != nil {
					t.Errorf("eps=%g: %v", eps, resp.Err)
					return
				}
				if len(resp.Result.Scores) != g.N() {
					t.Errorf("eps=%g: wrong vector length", eps)
					return
				}
			}
		}(gr)
	}
	wg.Wait()

	// One more insert forces a final eviction pass over the now-completed
	// builds; the retained map must then respect the bound.
	if resp := svc.Query(context.Background(), exactsim.Request{Source: 0, Epsilon: 0.5}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if st := svc.Stats(); st.Queriers > 2 {
		t.Fatalf("%d queriers retained, bound is 2", st.Queriers)
	}
}

// TestServiceBatchCancelled: once ctx is dead, Batch stops submitting —
// the remaining requests are answered in place with CodeCanceled instead
// of each paying a goroutine to discover the dead context.
func TestServiceBatchCancelled(t *testing.T) {
	g := testServiceGraph(t)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]exactsim.Request, 50000)
	for i := range reqs {
		reqs[i] = exactsim.Request{Source: exactsim.NodeID(i % g.N())}
	}
	before := runtime.NumGoroutine()
	start := time.Now()
	resps := svc.Batch(ctx, reqs)
	elapsed := time.Since(start)
	after := runtime.NumGoroutine()

	if len(resps) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(resps), len(reqs))
	}
	for i, r := range resps {
		if r.Err == nil || r.Err.Code != exactsim.CodeCanceled {
			t.Fatalf("response %d: err=%v, want CodeCanceled", i, r.Err)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("response %d does not match context.Canceled", i)
		}
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled batch took %v", elapsed)
	}
	// The old implementation spawned one goroutine per remaining request;
	// the fixed path spawns none for a pre-cancelled context.
	if after > before+10 {
		t.Fatalf("goroutines grew %d → %d on a cancelled batch", before, after)
	}
	if st := svc.Stats(); st.Queries != int64(len(reqs)) || st.Errors != int64(len(reqs)) {
		t.Fatalf("counters diverged: queries=%d errors=%d want %d", st.Queries, st.Errors, len(reqs))
	}
}

// TestServiceErrorCodes: the protocol taxonomy — each rejection carries
// its stable code, and codes keep matching the standard sentinels through
// errors.Is, including after a JSON round trip (the property a network
// transport depends on).
func TestServiceErrorCodes(t *testing.T) {
	g := testServiceGraph(t)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        1,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1)},
	})
	if err != nil {
		t.Fatal(err)
	}

	bg := context.Background()
	if resp := svc.Query(bg, exactsim.Request{Algorithm: "nope", Source: 0}); resp.Err == nil ||
		resp.Err.Code != exactsim.CodeNotFound {
		t.Fatalf("unknown algorithm: %v", resp.Err)
	}
	if resp := svc.Query(bg, exactsim.Request{Source: exactsim.NodeID(g.N())}); resp.Err == nil ||
		resp.Err.Code != exactsim.CodeInvalidArgument {
		t.Fatalf("out-of-range source: %v", resp.Err)
	}
	if resp := svc.Query(bg, exactsim.Request{Source: 0, K: -1}); resp.Err == nil ||
		resp.Err.Code != exactsim.CodeInvalidArgument {
		t.Fatalf("negative k: %v", resp.Err)
	}
	cancelled, cancel := context.WithCancel(bg)
	cancel()
	if resp := svc.Query(cancelled, exactsim.Request{Source: 0, NoCache: true}); resp.Err == nil ||
		resp.Err.Code != exactsim.CodeCanceled || !errors.Is(resp.Err, context.Canceled) {
		t.Fatalf("cancelled query: %v", resp.Err)
	}

	ok := svc.Query(bg, exactsim.Request{Source: 1, K: 3})
	if ok.Err != nil {
		t.Fatal(ok.Err)
	}

	svc.Close()
	closed := svc.Query(bg, exactsim.Request{Source: 0})
	if closed.Err == nil || closed.Err.Code != exactsim.CodeClosed ||
		!errors.Is(closed.Err, exactsim.ErrServiceClosed) {
		t.Fatalf("closed service: %v", closed.Err)
	}
	if _, err := svc.Update(g); !errors.Is(err, exactsim.ErrServiceClosed) {
		t.Fatalf("Update on closed service: %v", err)
	}

	// Wire round trip: a success and a failure both survive JSON with
	// sentinel matching intact.
	for _, resp := range []exactsim.Response{ok, closed,
		{Request: exactsim.Request{Source: 2}, GraphEpoch: 3,
			Err: exactsim.Errorf(exactsim.CodeDeadlineExceeded, "too slow")}} {
		data, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		var back exactsim.Response
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.GraphEpoch != resp.GraphEpoch || back.Request != resp.Request {
			t.Fatalf("round trip mutated the envelope: %+v vs %+v", back, resp)
		}
		if (back.Err == nil) != (resp.Err == nil) {
			t.Fatal("round trip dropped or invented an error")
		}
		if resp.Err != nil && back.Err.Code != resp.Err.Code {
			t.Fatalf("code %q became %q", resp.Err.Code, back.Err.Code)
		}
	}
	var back exactsim.Response
	data, _ := json.Marshal(exactsim.Response{
		Err: exactsim.Errorf(exactsim.CodeDeadlineExceeded, "too slow")})
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(back.Err, context.DeadlineExceeded) {
		t.Fatal("deserialized deadline error no longer matches context.DeadlineExceeded")
	}
	data, _ = json.Marshal(ok)
	var backOK exactsim.Response
	if err := json.Unmarshal(data, &backOK); err != nil {
		t.Fatal(err)
	}
	if len(backOK.Result.Scores) != len(ok.Result.Scores) || len(backOK.TopK) != len(ok.TopK) {
		t.Fatal("round trip lost the result payload")
	}
}
