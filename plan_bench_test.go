package exactsim_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

// BenchmarkDeadlineStress measures the anytime-serving contract under
// deadline pressure: opted-in (AllowPartial) queries at a tight target
// epsilon, capped at three deadline tiers. Per tier it reports
// partial_rate (the query returned a best-so-far answer), full_rate
// (the ladder finished inside the deadline) and deadline_exceeded_rate
// (nothing answerable before expiry). The serving promise of PR 10 is
// that the middle tiers convert what used to be bare deadline_exceeded
// errors into Partial answers — partial_rate is the payoff and
// deadline_exceeded_rate the residual.
func BenchmarkDeadlineStress(b *testing.B) {
	g := exactsim.GenerateBarabasiAlbert(1_500, 4, 1)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.01), exactsim.WithSeed(1)},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()

	for _, deadline := range []time.Duration{2 * time.Millisecond, 20 * time.Millisecond, 200 * time.Millisecond} {
		b.Run(fmt.Sprintf("deadline=%s", deadline), func(b *testing.B) {
			var partial, full, exceeded int
			for i := 0; b.Loop(); i++ {
				ctx, cancel := context.WithTimeout(context.Background(), deadline)
				resp := svc.Query(ctx, exactsim.Request{
					Source:       exactsim.NodeID(i % g.N()),
					Epsilon:      1e-4,
					K:            10,
					AllowPartial: true,
					NoCache:      true,
				})
				cancel()
				switch {
				case resp.Partial:
					partial++
				case resp.Err == nil:
					full++
				case resp.Err.Code == exactsim.CodeDeadlineExceeded:
					exceeded++
				default:
					b.Fatalf("unexpected outcome: %+v", resp.Err)
				}
			}
			n := float64(b.N)
			b.ReportMetric(float64(partial)/n, "partial_rate")
			b.ReportMetric(float64(full)/n, "full_rate")
			b.ReportMetric(float64(exceeded)/n, "deadline_exceeded_rate")
		})
	}
}
