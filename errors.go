package exactsim

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrorCode is the transport-stable error taxonomy of the query protocol.
// Codes — not Go error identities — are what crosses a process boundary;
// the *Error carrying one reconstructs the matching Go sentinel semantics
// on the far side (see Error.Is), so errors.Is(err, context.DeadlineExceeded)
// holds for a deadline that expired in a remote server.
type ErrorCode string

const (
	// CodeInvalidArgument rejects a malformed request: out-of-range
	// source, epsilon outside (0,1), negative k, unparsable body.
	CodeInvalidArgument ErrorCode = "invalid_argument"
	// CodeNotFound names a missing resource — an algorithm not in the
	// registry.
	CodeNotFound ErrorCode = "not_found"
	// CodeDeadlineExceeded is a query cancelled by its deadline
	// (per-request timeout or the service-wide default). Matches
	// context.DeadlineExceeded under errors.Is. Anytime carve-out: a
	// request that set AllowPartial and completed at least one accuracy
	// tier before its deadline fired gets a best-so-far Response
	// (Partial: true) instead of this code — deadline_exceeded then only
	// means no useful work finished at all.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeCanceled is a query cancelled by its caller. Matches
	// context.Canceled under errors.Is.
	CodeCanceled ErrorCode = "canceled"
	// CodeUnavailable asks the caller to retry elsewhere or later: the
	// service exists but cannot take the request now.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeClosed is a request to a service that has been shut down.
	// Matches ErrServiceClosed under errors.Is.
	CodeClosed ErrorCode = "closed"
	// CodeInternal is an unexpected server-side failure (a querier build
	// error, a panic turned response). Not retryable by default.
	CodeInternal ErrorCode = "internal"
)

// Error is the serializable per-request error of the query protocol. It
// travels inside Response (and so over any transport) where a bare Go
// error could not; Is() maps the stable Code back onto the standard
// sentinels so call sites keep using errors.Is unchanged, locally or
// against a remote server.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message,omitempty"`

	// RetryAfterMillis, when positive on a CodeUnavailable error, hints
	// how long the caller should wait before retrying: shed responses
	// size it from observed queue dwell, breaker-open responses from the
	// remaining cooldown. Clients treat it as the floor of their next
	// backoff sleep; 0 means no hint.
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`

	// cause is the wrapped local error (Wrapf). It keeps errors.Is/As
	// chains intact in-process and is deliberately not serialized: only
	// Code, Message and RetryAfterMillis cross a transport boundary.
	cause error
}

// Errorf builds an *Error with a formatted message.
func Errorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Wrapf builds an *Error that carries code and wraps cause: the message
// becomes "<formatted>: <cause>", and Unwrap exposes cause so local
// errors.Is/As chains still see the original error. Use it where a
// fmt.Errorf("...: %w", err) used to leak an uncoded error across the
// public surface.
func Wrapf(code ErrorCode, cause error, format string, args ...any) *Error {
	msg := fmt.Sprintf(format, args...)
	if cause != nil {
		msg += ": " + cause.Error()
	}
	return &Error{Code: code, Message: msg, cause: cause}
}

// WithRetryAfter stamps the retry_after_ms hint (rounded up to ≥1ms for
// positive durations, so a sub-millisecond hint survives the integer
// wire field) and returns e for call-site chaining.
func (e *Error) WithRetryAfter(d time.Duration) *Error {
	if d <= 0 {
		return e
	}
	ms := d.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	e.RetryAfterMillis = ms
	return e
}

// RetryAfter extracts the retry hint from any error carrying a *Error
// with RetryAfterMillis set (0 otherwise) — the duration clients floor
// their next backoff sleep at.
func RetryAfter(err error) time.Duration {
	var pe *Error
	if errors.As(err, &pe) && pe.RetryAfterMillis > 0 {
		return time.Duration(pe.RetryAfterMillis) * time.Millisecond
	}
	return 0
}

// Unwrap exposes the wrapped cause (nil for errors built by Errorf or
// received over a transport).
func (e *Error) Unwrap() error { return e.cause }

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Message == "" {
		return string(e.Code)
	}
	return string(e.Code) + ": " + e.Message
}

// Is makes errors.Is work across serialization: a deserialized *Error has
// lost the original error identity, so matching is by Code. Two *Errors
// match on equal codes; the context sentinels and ErrServiceClosed match
// their corresponding codes.
func (e *Error) Is(target error) bool {
	switch target {
	case context.DeadlineExceeded:
		return e.Code == CodeDeadlineExceeded
	case context.Canceled:
		return e.Code == CodeCanceled
	case ErrServiceClosed:
		return e.Code == CodeClosed
	}
	if te, ok := target.(*Error); ok {
		return e.Code == te.Code
	}
	return false
}

// ToError maps any error onto the protocol taxonomy: nil stays nil, an
// *Error passes through, the context sentinels and ErrServiceClosed map
// to their codes, and anything unrecognized becomes CodeInternal (its
// text is preserved in Message).
func ToError(err error) *Error {
	if err == nil {
		return nil
	}
	var pe *Error
	if errors.As(err, &pe) {
		return pe
	}
	code := CodeInternal
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code = CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		code = CodeCanceled
	case errors.Is(err, ErrServiceClosed):
		code = CodeClosed
	}
	return &Error{Code: code, Message: err.Error()}
}
