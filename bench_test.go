// Benchmarks: one testing.B regenerator per table and figure of the
// paper's evaluation (DESIGN.md §3). Each runs the same harness code path
// as cmd/experiments, at smoke scale so `go test -bench=.` terminates in
// minutes; the recorded reproduction numbers in EXPERIMENTS.md come from
// cmd/experiments at larger scale.
package exactsim_test

import (
	"io"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/internal/harness"
)

// benchConfig is the smoke-scale harness setup shared by the figure
// benchmarks.
func benchConfig() harness.Config {
	cfg := harness.Quick()
	cfg.Scale = 0.01
	cfg.Queries = 1
	cfg.K = 10
	cfg.TimeBudget = 2 * time.Second
	cfg.EpsGrid = []float64{1e-1, 1e-2}
	cfg.GroundTruthEps = 1e-3
	cfg.SampleFactor = 0.5
	return cfg
}

func runFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(benchConfig())
		rep, err := r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Preformatted == "" && len(rep.Points) == 0 && len(rep.Rows) == 0 {
			b.Fatalf("%s produced no output", id)
		}
		if err := rep.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Datasets regenerates the dataset inventory (paper Table 2).
func BenchmarkTable2Datasets(b *testing.B) { runFigure(b, "table2") }

// BenchmarkFigure1MaxErrorVsQueryTimeSmall regenerates paper Figure 1.
func BenchmarkFigure1MaxErrorVsQueryTimeSmall(b *testing.B) { runFigure(b, "fig1") }

// BenchmarkFigure2PrecisionVsQueryTimeSmall regenerates paper Figure 2.
func BenchmarkFigure2PrecisionVsQueryTimeSmall(b *testing.B) { runFigure(b, "fig2") }

// BenchmarkFigure3PreprocessingSmall regenerates paper Figure 3.
func BenchmarkFigure3PreprocessingSmall(b *testing.B) { runFigure(b, "fig3") }

// BenchmarkFigure4IndexSizeSmall regenerates paper Figure 4.
func BenchmarkFigure4IndexSizeSmall(b *testing.B) { runFigure(b, "fig4") }

// BenchmarkFigure5MaxErrorVsQueryTimeLarge regenerates paper Figure 5.
func BenchmarkFigure5MaxErrorVsQueryTimeLarge(b *testing.B) { runFigure(b, "fig5") }

// BenchmarkFigure6PrecisionVsQueryTimeLarge regenerates paper Figure 6.
func BenchmarkFigure6PrecisionVsQueryTimeLarge(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkFigure7PreprocessingLarge regenerates paper Figure 7.
func BenchmarkFigure7PreprocessingLarge(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFigure8IndexSizeLarge regenerates paper Figure 8.
func BenchmarkFigure8IndexSizeLarge(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFigure9Ablation regenerates paper Figure 9 (basic vs optimized).
func BenchmarkFigure9Ablation(b *testing.B) { runFigure(b, "fig9") }

// BenchmarkTable3MemoryOverhead regenerates paper Table 3.
func BenchmarkTable3MemoryOverhead(b *testing.B) { runFigure(b, "table3") }

// BenchmarkAblationComponents regenerates the DESIGN.md §3 extra ablation
// (π²-sampling and Algorithm-3 isolated).
func BenchmarkAblationComponents(b *testing.B) { runFigure(b, "ablation-extra") }

// Micro-benchmarks of the public query path at representative settings.

func benchQuery(b *testing.B, optimized bool, eps float64) {
	b.Helper()
	g := exactsim.GenerateBarabasiAlbert(5000, 4, 1)
	eng, err := exactsim.New(g, exactsim.Options{
		Epsilon: eps, Optimized: optimized, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SingleSource(exactsim.NodeID(i % g.N())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleSourceOptimizedEps1e2 is the optimized engine at ε=1e-2.
func BenchmarkSingleSourceOptimizedEps1e2(b *testing.B) { benchQuery(b, true, 1e-2) }

// BenchmarkSingleSourceOptimizedEps1e3 is the optimized engine at ε=1e-3.
func BenchmarkSingleSourceOptimizedEps1e3(b *testing.B) { benchQuery(b, true, 1e-3) }

// BenchmarkSingleSourceBasicEps1e2 is the basic (ablation) engine at ε=1e-2.
func BenchmarkSingleSourceBasicEps1e2(b *testing.B) { benchQuery(b, false, 1e-2) }

// BenchmarkTopK500 measures top-k extraction on a full score vector.
func BenchmarkTopK500(b *testing.B) {
	g := exactsim.GenerateBarabasiAlbert(50000, 4, 1)
	eng, err := exactsim.New(g, exactsim.Options{Epsilon: 1e-1, Optimized: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	res, err := eng.SingleSource(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exactsim.TopKOf(res.Scores, 500, 0)
	}
}
