package exactsim

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/store"
)

// TestOpenSnapshotRejectsModifiedGraph grafts a diag spill written for
// one graph onto a container carrying a different graph — the "restore
// against a modified graph" failure the checksum binding exists to
// catch. OpenSnapshot must reject with invalid_argument instead of
// serving wrong-graph chunks.
func TestOpenSnapshotRejectsModifiedGraph(t *testing.T) {
	gA := GenerateBarabasiAlbert(300, 3, 1)
	svc, err := NewService(gA, ServiceOptions{
		CacheSize:      -1,
		QuerierOptions: []QuerierOption{WithSeed(5), WithEpsilon(0.05)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp := svc.Query(context.Background(), Request{Source: 0}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	var spill bytes.Buffer
	if _, err := svc.state.Load().diagIdx.WriteTo(&spill); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// Same shape, different edges: the kind of "same file name, modified
	// graph" drift a deployment pipeline can produce.
	gB := GenerateBarabasiAlbert(300, 3, 2)
	path := filepath.Join(t.TempDir(), "grafted.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := store.NewWriter(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Section(store.SectionGraph, graph.BinarySize(gB), func(w io.Writer) error {
		return graph.EncodeCSR(w, gB)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Section(store.SectionDiagIndex, int64(spill.Len()), func(w io.Writer) error {
		_, werr := w.Write(spill.Bytes())
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = OpenSnapshot(path, ServiceOptions{})
	if err == nil {
		t.Fatal("grafted snapshot accepted")
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.Code != CodeInvalidArgument {
		t.Fatalf("grafted snapshot rejected with %v, want code %q", err, CodeInvalidArgument)
	}

	// The same container with indexing disabled is fine — only the graph
	// section is consumed, and it is internally consistent.
	opts := ServiceOptions{DiagIndexBytes: -1}
	s2, err := OpenSnapshot(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

// TestSnapshotRestoredStateWiring pins the internal invariant the
// public round-trip test relies on: the restored index object IS the
// epoch-1 graphState's index (no copy, no rebuild), and snapshot-opened
// services release their mapping on Close.
func TestSnapshotRestoredStateWiring(t *testing.T) {
	g := GenerateBarabasiAlbert(200, 3, 4)
	svc, err := NewService(g, ServiceOptions{
		CacheSize:      -1,
		QuerierOptions: []QuerierOption{WithSeed(2), WithEpsilon(0.05)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp := svc.Query(context.Background(), Request{Source: 1}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	path := filepath.Join(t.TempDir(), "w.snap")
	if err := svc.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	restored, err := OpenSnapshot(path, ServiceOptions{
		CacheSize:      -1,
		QuerierOptions: []QuerierOption{WithSeed(2), WithEpsilon(0.05)},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := restored.state.Load()
	if st.epoch != 1 || st.diagIdx == nil {
		t.Fatalf("restored state epoch=%d diagIdx=%v", st.epoch, st.diagIdx)
	}
	if st.diagIdx.Stats().Chunks == 0 {
		t.Fatal("restored state's index is empty")
	}
	if st.g.Mapped() && restored.graphCloser == nil {
		t.Fatal("mmap-backed graph but no closer wired: Close would leak the mapping")
	}
	restored.Close()
}
