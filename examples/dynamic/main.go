// Dynamic demonstrates the index-free advantage the paper notes in §4:
// ExactSim (like ParSim) "can handle dynamic graphs" — after edge updates,
// a query on a fresh snapshot is exact with zero maintenance, while
// index-based methods (MC, PRSim, Linearization) keep answering from a
// stale index until they pay a full rebuild. Both sides go through the
// same Querier interface; the difference is only *which graph snapshot*
// each querier was constructed on.
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	// Start from a Wikivote-style directed graph and make it dynamic.
	g0, err := exactsim.GenerateDataset("WV", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	dyn := exactsim.DynamicFrom(g0)
	fmt.Printf("initial graph: n=%d m=%d\n", dyn.N(), dyn.M())

	const source = 5
	const k = 5
	ctx := context.Background()

	query := func(tag string, g *exactsim.Graph) []exactsim.Entry {
		q, err := exactsim.NewQuerier("exactsim", g,
			exactsim.WithEpsilon(1e-3), exactsim.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		top, _, err := q.TopK(ctx, source, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — top-%d of node %d:\n", tag, k, source)
		for rank, e := range top {
			fmt.Printf("  %d. node %-6d s = %.6f\n", rank+1, e.Idx, e.Val)
		}
		return top
	}

	before := query("before updates", dyn.Snapshot())

	// A stale MC index built now will keep answering the OLD graph.
	staleIndex, err := exactsim.NewQuerier("mc", dyn.Snapshot(),
		exactsim.WithWalks(15, 500), exactsim.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}

	// Update burst: rewire the source's neighborhood towards the current
	// top hit, making them strongly similar.
	target := before[0].Idx
	added := 0
	for _, v := range dyn.Snapshot().OutNeighbors(target) {
		if dyn.AddEdge(v, source) { // give source the same referrers
			added++
		}
	}
	fmt.Printf("\napplied %d edge insertions (source now shares %d in-neighbors with node %d)\n",
		added, added, target)

	query("after updates (fresh snapshot, zero maintenance)", dyn.Snapshot())

	// The stale index still reports pre-update similarities.
	staleTop, _, err := staleIndex.TopK(ctx, source, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstale MC index (built before the updates) — top-%d:\n", k)
	for rank, e := range staleTop {
		fmt.Printf("  %d. node %-6d s = %.6f\n", rank+1, e.Idx, e.Val)
	}
	fmt.Println("\nExactSim needed no rebuild: it is index-free, so the updated")
	fmt.Println("similarities are exact immediately. The MC index must be rebuilt")
	fmt.Println("from scratch to notice the new edges.")
}
