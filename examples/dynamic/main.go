// Dynamic demonstrates live graph serving — the index-free advantage the
// paper notes in §4: ExactSim "can handle dynamic graphs" because after
// edge updates a query on a fresh snapshot is exact with zero
// maintenance. Here that property is wired all the way into the serving
// layer: a Service subscribed to a DynamicGraph (ServeDynamic) swaps in
// each published snapshot under a new epoch without downtime — stale
// cache lines are evicted, in-flight queries finish on the epoch they
// started with, and every response says which generation answered it. An
// index-based method (MC) built before the updates keeps answering the
// old graph until it pays a full rebuild.
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	// Start from a Wikivote-style directed graph and make it dynamic.
	g0, err := exactsim.GenerateDataset("WV", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	dyn := exactsim.DynamicFrom(g0)
	fmt.Printf("initial graph: n=%d m=%d\n", dyn.N(), dyn.M())

	// ServeDynamic subscribes the service to the graph: every Publish
	// installs the fresh snapshot as the next epoch.
	svc, err := exactsim.ServeDynamic(dyn, exactsim.ServiceOptions{
		Workers:        4,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(1e-3), exactsim.WithSeed(7)},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	const source = 5
	const k = 5
	ctx := context.Background()

	query := func(tag string) exactsim.Response {
		resp := svc.Query(ctx, exactsim.Request{Source: source, K: k})
		if resp.Err != nil {
			log.Fatal(resp.Err)
		}
		fmt.Printf("\n%s — top-%d of node %d (epoch %d, cache_hit=%v):\n",
			tag, k, source, resp.GraphEpoch, resp.CacheHit)
		for rank, e := range resp.TopK {
			fmt.Printf("  %d. node %-6d s = %.6f\n", rank+1, e.Idx, e.Val)
		}
		return resp
	}

	before := query("before updates")
	query("same query again") // served by the epoch-1 cache line

	// A stale MC index built now will keep answering the OLD graph.
	staleIndex, err := exactsim.NewQuerier("mc", dyn.Snapshot(),
		exactsim.WithWalks(15, 500), exactsim.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}

	// Update burst: rewire the source's neighborhood towards the current
	// top hit, making them strongly similar. The service keeps answering
	// throughout; nothing changes until Publish commits the batch.
	target := before.TopK[0].Idx
	added := 0
	for _, v := range dyn.Snapshot().OutNeighbors(target) {
		if dyn.AddEdge(v, source) { // give source the same referrers
			added++
		}
	}
	dyn.Publish()
	fmt.Printf("\napplied %d edge insertions and published — service epoch is now %d\n",
		added, svc.Epoch())

	// The same request again: the pre-update cache line is gone (epoch-
	// keyed), the answer is exact on the new graph, zero maintenance paid.
	query("after publish (fresh epoch, zero maintenance)")

	// The stale index still reports pre-update similarities.
	staleTop, _, err := staleIndex.TopK(ctx, source, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstale MC index (built before the updates) — top-%d:\n", k)
	for rank, e := range staleTop {
		fmt.Printf("  %d. node %-6d s = %.6f\n", rank+1, e.Idx, e.Val)
	}
	fmt.Println("\nExactSim needed no rebuild: it is index-free, so the live service")
	fmt.Println("serves the updated similarities exactly, from the moment of Publish.")
	fmt.Println("The MC index must be rebuilt from scratch to notice the new edges.")
}
