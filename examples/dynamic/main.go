// Dynamic demonstrates the index-free advantage the paper notes in §4:
// ExactSim (like ParSim) "can handle dynamic graphs" — after edge updates,
// a query on a fresh snapshot is exact with zero maintenance, while
// index-based methods (MC, PRSim, Linearization) keep answering from a
// stale index until they pay a full rebuild.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	// Start from a Wikivote-style directed graph and make it dynamic.
	g0, err := exactsim.GenerateDataset("WV", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	dyn := exactsim.DynamicFrom(g0)
	fmt.Printf("initial graph: n=%d m=%d\n", dyn.N(), dyn.M())

	const source = 5
	const k = 5

	query := func(tag string, g *exactsim.Graph) []exactsim.Entry {
		eng, err := exactsim.New(g, exactsim.Options{Epsilon: 1e-3, Optimized: true, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		top, _, err := eng.TopK(source, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — top-%d of node %d:\n", tag, k, source)
		for rank, e := range top {
			fmt.Printf("  %d. node %-6d s = %.6f\n", rank+1, e.Idx, e.Val)
		}
		return top
	}

	before := query("before updates", dyn.Snapshot())

	// A stale MC index built now will keep answering the OLD graph.
	staleIndex := exactsim.BuildMCIndex(dyn.Snapshot(),
		exactsim.MCParams{C: 0.6, L: 15, R: 500, Seed: 3})

	// Update burst: rewire the source's neighborhood towards the current
	// top hit, making them strongly similar.
	target := before[0].Idx
	added := 0
	for _, v := range dyn.Snapshot().OutNeighbors(target) {
		if dyn.AddEdge(v, source) { // give source the same referrers
			added++
		}
	}
	fmt.Printf("\napplied %d edge insertions (source now shares %d in-neighbors with node %d)\n",
		added, added, target)

	after := query("after updates (fresh snapshot, zero maintenance)", dyn.Snapshot())
	_ = after

	// The stale index still reports pre-update similarities.
	staleScores := staleIndex.SingleSource(source)
	staleTop := exactsim.TopKOf(staleScores, k, source)
	fmt.Printf("\nstale MC index (built before the updates) — top-%d:\n", k)
	for rank, e := range staleTop {
		fmt.Printf("  %d. node %-6d s = %.6f\n", rank+1, e.Idx, e.Val)
	}
	fmt.Println("\nExactSim needed no rebuild: it is index-free, so the updated")
	fmt.Println("similarities are exact immediately. The MC index must be rebuilt")
	fmt.Println("from scratch to notice the new edges.")
}
