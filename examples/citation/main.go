// Citation demonstrates the application scenario that motivates SimRank in
// the paper's introduction: "two pages are similar if they are referenced
// by similar pages". On a DBLP-style co-authorship network we use exact
// single-source SimRank to discover an author's *peers* — authors embedded
// in the same collaboration circles — and validate that the ranking is
// meaningful by measuring how strongly each peer's collaborator set
// overlaps the query author's (a quantity SimRank never sees directly).
//
//	go run ./examples/citation
package main

import (
	"context"
	"fmt"
	"log"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	g, err := exactsim.GenerateDataset("DB", 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DBLP-style network: n=%d m=%d\n", g.N(), g.M())

	author := pickBusyAuthor(g)
	fmt.Printf("query author: node %d with %d collaborators\n\n",
		author, g.OutDegree(author))

	q, err := exactsim.NewQuerier("exactsim", g,
		exactsim.WithEpsilon(1e-4), exactsim.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}

	const k = 15
	peers, _, err := q.TopK(context.Background(), author, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d structural peers by exact SimRank:\n", k)
	fmt.Println("rank  node      SimRank    shared-collab  jaccard")
	var peerJaccard float64
	for rank, p := range peers {
		shared, jac := overlap(g, author, p.Idx)
		peerJaccard += jac
		fmt.Printf("%4d  %-8d  %.6f   %13d  %.3f\n", rank+1, p.Idx, p.Val, shared, jac)
	}
	peerJaccard /= float64(len(peers))

	// Baseline: the average collaborator overlap of random non-peers.
	var randJaccard float64
	count := 0
	for v := int32(1); count < 200; v += 37 {
		u := v % int32(g.N())
		if u != author {
			_, jac := overlap(g, author, u)
			randJaccard += jac
			count++
		}
	}
	randJaccard /= float64(count)

	fmt.Printf("\nmean collaborator Jaccard: peers %.3f vs random nodes %.4f (%.0f×)\n",
		peerJaccard, randJaccard, peerJaccard/maxf(randJaccard, 1e-9))
	fmt.Println("SimRank found authors in the same collaboration circles without")
	fmt.Println("ever being told about neighborhood overlap — it only follows the")
	fmt.Println("recursive `similar if referenced by similar' definition.")
}

// overlap reports |N(a)∩N(b)| and the Jaccard coefficient of the two
// collaborator sets.
func overlap(g *exactsim.Graph, a, b exactsim.NodeID) (int, float64) {
	na := g.OutNeighbors(a)
	nb := g.OutNeighbors(b)
	set := make(map[int32]bool, len(na))
	for _, v := range na {
		set[v] = true
	}
	shared := 0
	for _, v := range nb {
		if set[v] {
			shared++
		}
	}
	union := len(na) + len(nb) - shared
	if union == 0 {
		return 0, 0
	}
	return shared, float64(shared) / float64(union)
}

// pickBusyAuthor returns a node with 8–40 collaborators: enough structure
// for peers to exist, not a global hub.
func pickBusyAuthor(g *exactsim.Graph) exactsim.NodeID {
	best, bestDeg := exactsim.NodeID(0), 0
	for v := 0; v < g.N(); v++ {
		d := g.OutDegree(int32(v))
		if d >= 8 && d <= 40 && d > bestDeg {
			best, bestDeg = int32(v), d
		}
	}
	return best
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
