// Groundtruth reproduces the paper's central workflow in miniature: use
// ExactSim to produce single-source ground truth, then measure the REAL
// error of approximate SimRank algorithms against it — the measurement
// that was impossible before ExactSim existed (paper §1). Every method is
// driven through the same algorithm registry.
//
//	go run ./examples/groundtruth
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	// The ca-GrQc stand-in at 10% scale keeps this example quick.
	g, err := exactsim.GenerateDataset("GQ", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset GQ stand-in: n=%d m=%d\n", g.N(), g.M())

	const source = 7
	ctx := context.Background()

	// Step 1: ground truth. On a graph this size the power method is
	// still feasible, so we can also verify ExactSim's claim directly.
	exact, err := exactsim.NewQuerier("exactsim", g,
		exactsim.WithEpsilon(1e-4), exactsim.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	res, err := exact.SingleSource(ctx, source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ExactSim(eps=1e-4) ground truth in %v\n", res.QueryTime.Round(time.Millisecond))

	pm, err := exactsim.NewQuerier("powermethod", g)
	if err != nil {
		log.Fatal(err)
	}
	pmRes, err := pm.SingleSource(ctx, source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ExactSim vs PowerMethod MaxError: %.3g (must be ≤ 1e-4)\n\n",
		exactsim.MaxError(res.Scores, pmRes.Scores))
	truth := res.Scores

	// Step 2: evaluate approximate algorithms against the ground truth —
	// one loop over registry names and options instead of five bespoke
	// constructor calls.
	baselines := []struct {
		label string
		name  string
		opts  []exactsim.QuerierOption
	}{
		{"MC (L=10, r=100)", "mc", []exactsim.QuerierOption{exactsim.WithWalks(10, 100), exactsim.WithSeed(2)}},
		{"MC (L=20, r=1000)", "mc", []exactsim.QuerierOption{exactsim.WithWalks(20, 1000), exactsim.WithSeed(3)}},
		{"ParSim (L=50)", "parsim", []exactsim.QuerierOption{exactsim.WithIterations(50)}},
		{"Linearization (eps=0.01)", "linearization", []exactsim.QuerierOption{exactsim.WithEpsilon(0.01), exactsim.WithSeed(4)}},
		{"PRSim (eps=0.01)", "prsim", []exactsim.QuerierOption{exactsim.WithEpsilon(0.01), exactsim.WithSeed(5)}},
		{"ProbeSim (eps=0.05)", "probesim", []exactsim.QuerierOption{exactsim.WithEpsilon(0.05), exactsim.WithSeed(6)}},
	}

	fmt.Println("method                      time        MaxError   Precision@50")
	for _, b := range baselines {
		q, err := exactsim.NewQuerier(b.name, g, b.opts...)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		r, err := q.SingleSource(ctx, source)
		if err != nil {
			log.Fatal(err)
		}
		took := time.Since(start)
		if ix, ok := q.(exactsim.QuerierIndex); ok {
			took += ix.PrepTime() // charge index methods their build
		}
		fmt.Printf("%-26s  %-10v  %.3e  %.3f\n",
			b.label, took.Round(time.Millisecond),
			exactsim.MaxError(r.Scores, truth),
			exactsim.PrecisionAtK(r.Scores, truth, 50, source))
	}
	fmt.Println("\nNote how ParSim's MaxError has a bias floor no amount of")
	fmt.Println("iterations fixes, while its top-k precision stays high — the")
	fmt.Println("paper's Figure 1 vs Figure 2 contrast.")
}
