// Groundtruth reproduces the paper's central workflow in miniature: use
// ExactSim to produce single-source ground truth, then measure the REAL
// error of approximate SimRank algorithms against it — the measurement
// that was impossible before ExactSim existed (paper §1).
//
//	go run ./examples/groundtruth
package main

import (
	"fmt"
	"log"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	// The ca-GrQc stand-in at 20% scale keeps this example quick.
	g, err := exactsim.GenerateDataset("GQ", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset GQ stand-in: n=%d m=%d\n", g.N(), g.M())

	const source = 7

	// Step 1: ground truth. On a graph this size the power method is
	// still feasible, so we can also verify ExactSim's claim directly.
	eng, err := exactsim.New(g, exactsim.Options{Epsilon: 1e-4, Optimized: true, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := eng.SingleSource(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ExactSim(eps=1e-4) ground truth in %v\n", time.Since(start).Round(time.Millisecond))

	pm := exactsim.PowerMethod(g, exactsim.DefaultC, 0)
	fmt.Printf("ExactSim vs PowerMethod MaxError: %.3g (must be ≤ 1e-4)\n\n",
		exactsim.MaxError(res.Scores, pm.Row(source)))
	truth := res.Scores

	// Step 2: evaluate approximate algorithms against the ground truth.
	type entry struct {
		name   string
		scores []float64
		took   time.Duration
	}
	var entries []entry
	timeIt := func(name string, f func() []float64) {
		t0 := time.Now()
		scores := f()
		entries = append(entries, entry{name, scores, time.Since(t0)})
	}
	timeIt("MC (L=10, r=100)", func() []float64 {
		return exactsim.BuildMCIndex(g,
			exactsim.MCParams{C: 0.6, L: 10, R: 100, Seed: 2}).SingleSource(source)
	})
	timeIt("MC (L=20, r=1000)", func() []float64 {
		return exactsim.BuildMCIndex(g,
			exactsim.MCParams{C: 0.6, L: 20, R: 1000, Seed: 3}).SingleSource(source)
	})
	timeIt("ParSim (L=50)", func() []float64 {
		return exactsim.NewParSim(g,
			exactsim.ParSimParams{C: 0.6, L: 50}).SingleSource(source)
	})
	timeIt("Linearization (eps=0.01)", func() []float64 {
		return exactsim.BuildLinearization(g,
			exactsim.LinearizationParams{C: 0.6, Eps: 0.01, Seed: 4}).SingleSource(source)
	})
	timeIt("PRSim (eps=0.01)", func() []float64 {
		return exactsim.BuildPRSim(g,
			exactsim.PRSimParams{C: 0.6, Eps: 0.01, Seed: 5}).SingleSource(source)
	})

	fmt.Println("method                      time        MaxError   Precision@50")
	for _, e := range entries {
		fmt.Printf("%-26s  %-10v  %.3e  %.3f\n",
			e.name, e.took.Round(time.Millisecond),
			exactsim.MaxError(e.scores, truth),
			exactsim.PrecisionAtK(e.scores, truth, 50, source))
	}
	fmt.Println("\nNote how ParSim's MaxError has a bias floor no amount of")
	fmt.Println("iterations fixes, while its top-k precision stays high — the")
	fmt.Println("paper's Figure 1 vs Figure 2 contrast.")
}
