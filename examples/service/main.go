// Service demonstrates the concurrent query front-end — the first step
// toward the multi-user serving layer in ROADMAP.md: a bounded worker
// pool answering batched SimRank requests over one graph, mixing
// algorithms per request, with per-query deadlines and an LRU result
// cache keyed by (algorithm, source, ε).
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	g, err := exactsim.GenerateDataset("WV", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d — algorithms: %v\n\n", g.N(), g.M(), exactsim.Algorithms())

	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        4,
		CacheSize:      256,
		DefaultTimeout: 10 * time.Second,
		// Service-wide defaults for every querier it constructs.
		QuerierOptions: []exactsim.QuerierOption{
			exactsim.WithEpsilon(1e-3),
			exactsim.WithSeed(7),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// A batch mixing algorithms and sources: ExactSim for precise answers,
	// ParSim/ProbeSim where approximate-but-fast is fine. The worker pool
	// computes them concurrently; responses come back in request order.
	reqs := []exactsim.Request{
		{Source: 3, K: 5},                      // default algorithm ("auto": the planner picks)
		{Algorithm: "parsim", Source: 3, K: 5}, // index-free approximation
		// Sampling baselines want a per-request ε their O(log n/ε²) cost
		// can afford; distinct ε gets a distinct querier and cache line.
		{Algorithm: "probesim", Source: 17, Epsilon: 0.05, K: 5},
		{Algorithm: "exactsim", Source: 17, K: 5},
		{Algorithm: "exactsim", Source: 17, Epsilon: 1e-2, K: 5},
	}
	start := time.Now()
	resps := svc.Batch(context.Background(), reqs)
	fmt.Printf("batch of %d answered in %v:\n", len(reqs), time.Since(start).Round(time.Millisecond))
	for _, r := range resps {
		if r.Err != nil {
			fmt.Printf("  %-10s src=%-3d ERROR: %v\n", r.Request.Algorithm, r.Request.Source, r.Err)
			continue
		}
		top := r.TopK[0]
		fmt.Printf("  %-10s src=%-3d best peer: node %-5d s=%.5f (query %v)\n",
			r.Result.Algorithm, r.Request.Source, top.Idx, top.Val,
			r.Result.QueryTime.Round(time.Microsecond))
	}

	// Re-running the batch hits the LRU: identical (algorithm, source, ε)
	// keys answer without recomputation.
	start = time.Now()
	resps = svc.Batch(context.Background(), reqs)
	hits := 0
	for _, r := range resps {
		if r.CacheHit {
			hits++
		}
	}
	fmt.Printf("\nsame batch again: %v, %d/%d served from cache\n",
		time.Since(start).Round(time.Microsecond), hits, len(resps))

	st := svc.Stats()
	fmt.Printf("service stats: queries=%d cache-hits=%d errors=%d cached-results=%d\n",
		st.Queries, st.CacheHits, st.Errors, st.CachedResults)

	// Warming pre-computes hub sources: it fills the result cache AND the
	// epoch's shared diagonal sample index, so *fresh* sources — note the
	// sources below were never queried — skip most of their Diagonal-phase
	// sampling, typically the dominant single-source cost.
	wr := svc.Warm(context.Background(), exactsim.WarmRequest{TopDegree: 16})
	if wr.Err != nil {
		log.Fatal(wr.Err)
	}
	start = time.Now()
	for src := exactsim.NodeID(40); src < 48; src++ {
		if r := svc.Query(context.Background(), exactsim.Request{Source: src}); r.Err != nil {
			log.Fatal(r.Err)
		}
	}
	st = svc.Stats()
	fmt.Printf("warmed %d hubs; 8 fresh sources in %v — diag index: %.0f%% hit rate, %d chunks (%d KiB)\n",
		wr.Warmed, time.Since(start).Round(time.Millisecond),
		100*st.DiagHitRate, st.DiagChunks, st.DiagResidentBytes>>10)

	// "auto" — the service default when a request names no algorithm —
	// routes through the adaptive planner: it picks the method from the
	// graph's shape and the requested (ε, k), and the response's Plan
	// block records what it chose and why. At defaults the planned answer
	// is bit-identical to asking for the chosen method explicitly.
	r := svc.Query(context.Background(), exactsim.Request{Algorithm: exactsim.AlgorithmAuto, Source: 3, K: 5})
	if r.Err != nil {
		log.Fatal(r.Err)
	}
	fmt.Printf("\nauto planned %s (%s) at ε=%g\n", r.Plan.Algorithm, r.Plan.Reason, r.Plan.EffectiveEpsilon)

	// Anytime serving: QueryStream walks the accuracy-tier ladder
	// coarse→tight, emitting each tier as it completes (Partial, with the
	// ε it achieved); the returned terminal response is bit-identical to
	// the non-streaming answer for the same request.
	final := svc.QueryStream(context.Background(),
		exactsim.Request{Source: 29, Epsilon: 1e-3, K: 5},
		func(ref exactsim.Response) {
			fmt.Printf("  refinement: ε=%g in %v\n",
				ref.AchievedEpsilon, ref.Result.QueryTime.Round(time.Microsecond))
		})
	if final.Err != nil {
		log.Fatal(final.Err)
	}
	fmt.Printf("stream final: %s at ε=%g, best peer node %d\n",
		final.Result.Algorithm, final.Request.Epsilon, final.TopK[0].Idx)
}
