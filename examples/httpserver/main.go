// Httpserver demonstrates the HTTP transport of the query protocol: the
// same server cmd/exactsimd runs, started in-process here, queried
// through an httpapi.Client used as a plain exactsim.Querier — remote and
// local queriers are interchangeable behind the interface, which is the
// point of the transport-agnostic protocol.
//
//	go run ./examples/httpserver
//
// In production the two halves live in different processes:
//
//	go run ./cmd/exactsimd -dataset WV -scale 0.1 -addr :8640 &
//	curl -s localhost:8640/v1/query -d '{"algorithm":"exactsim","source":5,"k":3}'
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

func main() {
	g, err := exactsim.GenerateDataset("WV", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        4,
		DefaultTimeout: 10 * time.Second,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(1e-3), exactsim.WithSeed(7)},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// Serve on an ephemeral loopback port — exactly what cmd/exactsimd
	// does on a configured address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, httpapi.NewServer(svc, httpapi.ServerOptions{}))
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving n=%d m=%d on %s\n\n", g.N(), g.M(), base)

	client, err := httpapi.NewClient(base, httpapi.WithAlgorithm("exactsim"))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Discovery: what does this server answer?
	names, def, err := client.Algorithms(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote algorithms (default %q): %v\n\n", def, names)

	// The client IS an exactsim.Querier — code written against a local
	// graph points at the daemon unchanged.
	var q exactsim.Querier = client
	top, res, err := q.TopK(ctx, 5, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 of node 5 over the wire (%v server-side):\n", res.QueryTime.Round(time.Microsecond))
	for rank, e := range top {
		fmt.Printf("  %d. node %-6d s = %.6f\n", rank+1, e.Idx, e.Val)
	}

	// The raw protocol: one request, the full response envelope back —
	// including the graph epoch and the cache verdict.
	resp, err := client.Query(ctx, exactsim.Request{Source: 5, K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame query again: cache_hit=%v graph_epoch=%d\n", resp.CacheHit, resp.GraphEpoch)

	// Structured errors cross the wire: an unknown algorithm is
	// code "not_found", not a stringly-typed 500.
	resp, err = client.Query(ctx, exactsim.Request{Algorithm: "simrank++", Source: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unknown algorithm → code=%q message=%q\n", resp.Err.Code, resp.Err.Message)

	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremote stats: queries=%d cache-hits=%d errors=%d epoch=%d\n",
		st.Queries, st.CacheHits, st.Errors, st.GraphEpoch)
	fmt.Printf("\ntry it with curl:\n  curl -s %s/v1/query -d '{\"source\":5,\"k\":3}'\n", base)
}
