// Quickstart: build a small graph, run one exact single-source SimRank
// query through the unified Querier API, and print the most similar nodes.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	// A co-authorship-style scale-free graph: 300 authors, each new
	// author collaborating with 3 existing ones. (Small enough that this
	// quickstart finishes in seconds at a tight ε; see examples/groundtruth
	// and cmd/experiments for larger runs.)
	g := exactsim.GenerateBarabasiAlbert(300, 3, 42)
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.M())

	// Any name in Algorithms() constructs the same way; "exactsim" is the
	// paper's optimized algorithm (sparse linearization, π²-sampling,
	// Algorithm-3 diagonal estimation). ε = 10⁻⁴ means every similarity is
	// within 1e-4 of the truth with high probability; tighten to 1e-7 —
	// the paper's exactness threshold — for float-exact output.
	q, err := exactsim.NewQuerier("exactsim", g,
		exactsim.WithEpsilon(1e-4),
		exactsim.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Every query takes a context; deadlines cancel mid-computation.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One TopK call computes the full single-source vector and ranks it;
	// the returned Result carries everything SingleSource would have.
	const source = 42
	top, res, err := q.TopK(ctx, source, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-source query for node %d (%v):\n", source, res.QueryTime.Round(time.Millisecond))
	if det, ok := res.Detail.(*exactsim.Result); ok {
		fmt.Printf("  levels L=%d, walk-pair samples=%d, D entries estimated=%d\n",
			det.L, det.TotalSamples, det.DNodes)
		fmt.Printf("  phase times: forward=%v diagonal=%v backward=%v\n",
			det.ForwardTime, det.DiagTime, det.BackwardTime)
	}
	fmt.Printf("  s(%d,%d) = %.7f (should be 1 ± ε)\n", source, source, res.Scores[source])

	fmt.Println("top-10 most similar nodes:")
	for rank, e := range top {
		fmt.Printf("  %2d. node %-6d s = %.7f\n", rank+1, e.Idx, e.Val)
	}
}
