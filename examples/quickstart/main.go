// Quickstart: build a small graph, run one exact single-source SimRank
// query, and print the most similar nodes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	// A co-authorship-style scale-free graph: 300 authors, each new
	// author collaborating with 3 existing ones. (Small enough that this
	// quickstart finishes in seconds at a tight ε; see examples/groundtruth
	// and cmd/experiments for larger runs.)
	g := exactsim.GenerateBarabasiAlbert(300, 3, 42)
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.M())

	// An engine with ε = 10⁻⁴: every returned similarity is within 1e-4
	// of the true SimRank value with high probability (tighten Epsilon to
	// 1e-7 — the paper's exactness threshold — for float-exact output). Optimized mode is
	// the full ExactSim of the paper (sparse linearization, π²-sampling,
	// Algorithm-3 diagonal estimation).
	eng, err := exactsim.New(g, exactsim.Options{
		Epsilon:   1e-4,
		Optimized: true,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	const source = 42
	res, err := eng.SingleSource(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-source query for node %d:\n", source)
	fmt.Printf("  levels L=%d, walk-pair samples=%d, D entries estimated=%d\n",
		res.L, res.TotalSamples, res.DNodes)
	fmt.Printf("  phase times: forward=%v diagonal=%v backward=%v\n",
		res.ForwardTime, res.DiagTime, res.BackwardTime)
	fmt.Printf("  s(%d,%d) = %.7f (should be 1 ± ε)\n", source, source, res.Scores[source])

	fmt.Println("top-10 most similar nodes:")
	for rank, e := range exactsim.TopKOf(res.Scores, 10, source) {
		fmt.Printf("  %2d. node %-6d s = %.7f\n", rank+1, e.Idx, e.Val)
	}
}
