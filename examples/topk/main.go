// Topk demonstrates top-k SimRank queries and the pooling protocol of
// paper §2: when ground truth is unaffordable, pool the candidates of all
// competing algorithms and adjudicate with high-precision Monte Carlo.
// The competitors all answer through the unified Querier interface.
//
//	go run ./examples/topk
package main

import (
	"context"
	"fmt"
	"log"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	// A two-community graph: top-k queries have a clear "right" answer
	// (nodes from the source's own community).
	g, err := exactsim.GenerateDataset("WV", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset WV stand-in: n=%d m=%d\n", g.N(), g.M())

	const (
		source = 17
		k      = 20
	)
	ctx := context.Background()

	// Competing top-k answers, one registry call per algorithm.
	competitors := []struct {
		name string
		opts []exactsim.QuerierOption
	}{
		{"exactsim", []exactsim.QuerierOption{exactsim.WithEpsilon(1e-4), exactsim.WithSeed(11)}},
		{"mc", []exactsim.QuerierOption{exactsim.WithWalks(10, 200), exactsim.WithSeed(12)}},
		{"parsim", []exactsim.QuerierOption{exactsim.WithIterations(30)}},
		{"prsim", []exactsim.QuerierOption{exactsim.WithEpsilon(0.02), exactsim.WithSeed(13)}},
	}
	display := map[string]string{
		"exactsim": "ExactSim", "mc": "MC", "parsim": "ParSim", "prsim": "PRSim",
	}

	var entries []exactsim.PoolEntry
	for _, comp := range competitors {
		q, err := exactsim.NewQuerier(comp.name, g, comp.opts...)
		if err != nil {
			log.Fatal(err)
		}
		top, _, err := q.TopK(ctx, source, k)
		if err != nil {
			log.Fatal(err)
		}
		entries = append(entries, exactsim.PoolEntry{
			Algorithm: display[comp.name], TopK: top,
		})
		if comp.name == "exactsim" {
			fmt.Printf("\nExactSim top-%d for node %d:\n", k, source)
			for rank, e := range top {
				if rank == 5 {
					fmt.Printf("  ... (%d more)\n", k-5)
					break
				}
				fmt.Printf("  %2d. node %-6d s = %.6f\n", rank+1, e.Idx, e.Val)
			}
		}
	}

	// Pool all four and adjudicate.
	result := exactsim.Pool(g, 0.6, source, k, entries, 200000, 99)

	fmt.Println("\npooled precision (paper §2 protocol):")
	for _, comp := range competitors {
		name := display[comp.name]
		fmt.Printf("  %-9s %.3f\n", name, result.Precision[name])
	}
	fmt.Println("\nCaveat from the paper: pooled precision is relative to the")
	fmt.Println("pool; an algorithm can top the pool yet miss the true top-k.")
	fmt.Println("That is why ExactSim's absolute ground truth matters.")
}
