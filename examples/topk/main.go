// Topk demonstrates top-k SimRank queries and the pooling protocol of
// paper §2: when ground truth is unaffordable, pool the candidates of all
// competing algorithms and adjudicate with high-precision Monte Carlo.
//
//	go run ./examples/topk
package main

import (
	"fmt"
	"log"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	// A two-community graph: top-k queries have a clear "right" answer
	// (nodes from the source's own community).
	g, err := exactsim.GenerateDataset("WV", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset WV stand-in: n=%d m=%d\n", g.N(), g.M())

	const (
		source = 17
		k      = 20
	)

	// Competing top-k answers.
	eng, err := exactsim.New(g, exactsim.Options{Epsilon: 1e-4, Optimized: true, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	exactTop, _, err := eng.TopK(source, k)
	if err != nil {
		log.Fatal(err)
	}
	mcTop := exactsim.TopKOf(
		exactsim.BuildMCIndex(g, exactsim.MCParams{C: 0.6, L: 10, R: 200, Seed: 12}).
			SingleSource(source), k, source)
	parsimTop := exactsim.TopKOf(
		exactsim.NewParSim(g, exactsim.ParSimParams{C: 0.6, L: 30}).
			SingleSource(source), k, source)
	prsimTop := exactsim.TopKOf(
		exactsim.BuildPRSim(g, exactsim.PRSimParams{C: 0.6, Eps: 0.02, Seed: 13}).
			SingleSource(source), k, source)

	fmt.Printf("\nExactSim top-%d for node %d:\n", k, source)
	for rank, e := range exactTop {
		if rank == 5 {
			fmt.Printf("  ... (%d more)\n", k-5)
			break
		}
		fmt.Printf("  %2d. node %-6d s = %.6f\n", rank+1, e.Idx, e.Val)
	}

	// Pool all four and adjudicate.
	result := exactsim.Pool(g, 0.6, source, k, []exactsim.PoolEntry{
		{Algorithm: "ExactSim", TopK: exactTop},
		{Algorithm: "MC", TopK: mcTop},
		{Algorithm: "ParSim", TopK: parsimTop},
		{Algorithm: "PRSim", TopK: prsimTop},
	}, 200000, 99)

	fmt.Println("\npooled precision (paper §2 protocol):")
	for _, name := range []string{"ExactSim", "MC", "ParSim", "PRSim"} {
		fmt.Printf("  %-9s %.3f\n", name, result.Precision[name])
	}
	fmt.Println("\nCaveat from the paper: pooled precision is relative to the")
	fmt.Println("pool; an algorithm can top the pool yet miss the true top-k.")
	fmt.Println("That is why ExactSim's absolute ground truth matters.")
}
