package exactsim_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

func testServiceGraph(t *testing.T) *exactsim.Graph {
	t.Helper()
	return exactsim.GenerateBarabasiAlbert(400, 3, 21)
}

// TestServiceConcurrentQueries hammers one Service from many goroutines
// mixing algorithms, sources and top-k requests; run under -race (CI
// does) this is the data-race proof for shared queriers and the LRU.
func TestServiceConcurrentQueries(t *testing.T) {
	g := testServiceGraph(t)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        4,
		CacheSize:      64,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	algos := []string{"exactsim", "parsim", "mc", "probesim"}
	const goroutines = 8
	const perGoroutine = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perGoroutine)
	for gr := 0; gr < goroutines; gr++ {
		wg.Add(1)
		go func(gr int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				// Only 5 distinct sources per algorithm, so (algorithm,
				// source) keys repeat heavily across goroutines: most
				// requests race a cached line while a few compute.
				req := exactsim.Request{
					Algorithm: algos[gr%len(algos)],
					Source:    exactsim.NodeID(i % 5),
					K:         1 + i%5,
				}
				resp := svc.Query(context.Background(), req)
				if resp.Err != nil {
					errs <- resp.Err
					return
				}
				if len(resp.TopK) != req.K {
					errs <- errors.New("wrong TopK length")
					return
				}
				if len(resp.Result.Scores) != g.N() {
					errs <- errors.New("wrong score vector length")
					return
				}
			}
		}(gr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Queries != goroutines*perGoroutine {
		t.Fatalf("Stats.Queries = %d, want %d", st.Queries, goroutines*perGoroutine)
	}
	if st.Errors != 0 {
		t.Fatalf("Stats.Errors = %d", st.Errors)
	}
	// (goroutine, iteration) pairs repeat (algorithm, source) keys heavily.
	if st.CacheHits == 0 {
		t.Fatal("no cache hits across repeated identical requests")
	}
}

// TestServiceCache: the second identical request is served from the LRU
// with the *same* result object; NoCache forces a recomputation.
func TestServiceCache(t *testing.T) {
	g := testServiceGraph(t)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.05), exactsim.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	req := exactsim.Request{Algorithm: "exactsim", Source: 3}
	first := svc.Query(context.Background(), req)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	second := svc.Query(context.Background(), req)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if !second.CacheHit {
		t.Fatal("second identical query missed the cache")
	}
	if &first.Result.Scores[0] != &second.Result.Scores[0] {
		t.Fatal("cache hit did not share the stored result")
	}
	// Top-k requests are served from the cached full vector too.
	topReq := req
	topReq.K = 5
	third := svc.Query(context.Background(), topReq)
	if third.Err != nil || !third.CacheHit || len(third.TopK) != 5 {
		t.Fatalf("top-k from cache: hit=%v err=%v k=%d", third.CacheHit, third.Err, len(third.TopK))
	}
	// Different epsilon is a different cache line.
	epsReq := req
	epsReq.Epsilon = 0.02
	fourth := svc.Query(context.Background(), epsReq)
	if fourth.Err != nil || fourth.CacheHit {
		t.Fatalf("distinct epsilon shared a cache line (hit=%v err=%v)", fourth.CacheHit, fourth.Err)
	}
	// NoCache bypasses lookup.
	fifth := svc.Query(context.Background(), exactsim.Request{Algorithm: "exactsim", Source: 3, NoCache: true})
	if fifth.Err != nil || fifth.CacheHit {
		t.Fatalf("NoCache request hit the cache (hit=%v err=%v)", fifth.CacheHit, fifth.Err)
	}
}

// TestServiceBatch: responses come back in request order, each tagged
// with its own request, and invalid entries fail individually.
func TestServiceBatch(t *testing.T) {
	g := testServiceGraph(t)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        3,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.05), exactsim.WithSeed(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	reqs := []exactsim.Request{
		{Algorithm: "parsim", Source: 0, K: 3},
		{Algorithm: "exactsim", Source: 1},
		{Algorithm: "no-such-algorithm", Source: 2},
		{Algorithm: "mc", Source: exactsim.NodeID(g.N())}, // out of range
		{Source: 4}, // default algorithm
	}
	resps := svc.Batch(context.Background(), reqs)
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(resps), len(reqs))
	}
	for i, resp := range resps {
		if resp.Request.Source != reqs[i].Source {
			t.Fatalf("response %d out of order", i)
		}
	}
	if resps[0].Err != nil || len(resps[0].TopK) != 3 {
		t.Fatalf("batch[0]: err=%v k=%d", resps[0].Err, len(resps[0].TopK))
	}
	if resps[1].Err != nil || resps[2].Err == nil || resps[3].Err == nil {
		t.Fatalf("batch error pattern wrong: %v %v %v", resps[1].Err, resps[2].Err, resps[3].Err)
	}
	if resps[4].Err != nil || resps[4].Result.Algorithm != "exactsim" {
		t.Fatalf("default algorithm not applied: %+v", resps[4])
	}
}

// TestServiceDeadline: a service-wide DefaultTimeout cancels a query that
// cannot finish in time, mid-computation, as context.DeadlineExceeded.
func TestServiceDeadline(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(3000, 5, 33)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        1,
		DefaultTimeout: 30 * time.Millisecond,
		// ε=10⁻⁶ makes the diagonal phase run for many seconds uncancelled.
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(1e-6), exactsim.WithSeed(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	start := time.Now()
	resp := svc.Query(context.Background(), exactsim.Request{Source: 7})
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", resp.Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline honored only after %v", elapsed)
	}
}

// TestServiceClose: Close drains and subsequent queries fail with
// ErrServiceClosed; Close is idempotent.
func TestServiceClose(t *testing.T) {
	g := testServiceGraph(t)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp := svc.Query(context.Background(), exactsim.Request{Source: 1}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	svc.Close()
	svc.Close()
	if resp := svc.Query(context.Background(), exactsim.Request{Source: 1}); !errors.Is(resp.Err, exactsim.ErrServiceClosed) {
		t.Fatalf("got %v, want ErrServiceClosed", resp.Err)
	}
}

// TestServiceSingleFlight: concurrent identical requests on a cold key
// elect one leader; everyone else shares its computation. Exactly one
// query computes, so CacheHits is deterministically N−1.
func TestServiceSingleFlight(t *testing.T) {
	g := testServiceGraph(t)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        4,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.05), exactsim.WithSeed(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const n = 8
	var wg sync.WaitGroup
	results := make([]exactsim.Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = svc.Query(context.Background(), exactsim.Request{Source: 9})
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	st := svc.Stats()
	if st.CacheHits != n-1 {
		t.Fatalf("CacheHits = %d, want %d (stampede: duplicate computations)", st.CacheHits, n-1)
	}
}

// TestServiceEpsilonValidation: Epsilon is part of the querier/cache
// keys, so NaN (which never equals itself as a map key) and out-of-range
// values must be rejected up front instead of leaking querier slots.
func TestServiceEpsilonValidation(t *testing.T) {
	g := testServiceGraph(t)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, eps := range []float64{math.NaN(), math.Inf(1), -0.5, 1, 1.5} {
		resp := svc.Query(context.Background(), exactsim.Request{Source: 1, Epsilon: eps})
		if resp.Err == nil {
			t.Fatalf("epsilon %g accepted", eps)
		}
	}
}

// TestServiceUnknownDefault: an unknown default algorithm is rejected at
// construction, not at first query.
func TestServiceUnknownDefault(t *testing.T) {
	if _, err := exactsim.NewService(testServiceGraph(t), exactsim.ServiceOptions{
		DefaultAlgorithm: "nope",
	}); err == nil {
		t.Fatal("unknown default algorithm accepted")
	}
	if _, err := exactsim.NewService(nil, exactsim.ServiceOptions{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}
